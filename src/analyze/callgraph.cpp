#include "analyze/callgraph.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "analyze/passes.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace lrt::analyze {

namespace {

using Tokens = std::vector<Token>;

bool is_punct(const Token& tok, const char* text) {
  return tok.kind == TokKind::kPunct && tok.text == text;
}

bool is_ident(const Token& tok, const char* text) {
  return tok.kind == TokKind::kIdentifier && tok.text == text;
}

/// Index of the ')' matching the '(' at `open`; kNoFunction if unbalanced.
std::size_t match_paren_close(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "(")) ++depth;
    if (is_punct(t[i], ")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return kNoFunction;
}

/// Directive extent covering token `i`, or nullptr. Extents are sorted by
/// begin (the lexer appends them in token order).
const DirectiveExtent* covering_directive(
    const std::vector<DirectiveExtent>& ds, std::size_t i) {
  auto it = std::upper_bound(
      ds.begin(), ds.end(), i,
      [](std::size_t v, const DirectiveExtent& d) { return v < d.begin; });
  if (it == ds.begin()) return nullptr;
  --it;
  return i < it->end ? &*it : nullptr;
}

/// Keywords that can never name a function being *defined* (control
/// constructs, specifiers with parenthesized operands).
bool definition_name_banned(const std::string& s) {
  static const std::set<std::string> kBan = {
      "if",       "for",     "while",    "switch",   "catch",  "return",
      "sizeof",   "alignof", "alignas",  "decltype", "typeid", "noexcept",
      "operator", "throw",   "new",      "delete",   "assert", "defined",
      "static_assert"};
  return kBan.count(s) != 0;
}

/// Keywords that can never name a function being *called* (same list plus
/// the cast family and coroutine operators).
bool call_name_banned(const std::string& s) {
  static const std::set<std::string> kBan = {
      "if",          "for",        "while",     "switch",
      "catch",       "return",     "sizeof",    "alignof",
      "alignas",     "decltype",   "typeid",    "noexcept",
      "operator",    "throw",      "new",       "delete",
      "assert",      "defined",    "static_assert",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "co_await",    "co_return",  "co_yield",  "this"};
  return kBan.count(s) != 0;
}

/// Identifiers after which an `f(...)` shape is still a call, not a
/// declaration (`return helper(x)`, `else helper()`).
bool prev_allows_call(const std::string& s) {
  static const std::set<std::string> kAllow = {
      "return", "else", "do", "throw", "co_return", "co_yield", "case"};
  return kAllow.count(s) != 0;
}

bool any_open(const Token& tok) {
  return tok.kind == TokKind::kPunct &&
         (tok.text == "(" || tok.text == "[" || tok.text == "{");
}

bool any_close(const Token& tok) {
  return tok.kind == TokKind::kPunct &&
         (tok.text == ")" || tok.text == "]" || tok.text == "}");
}

/// One parameter segment [start, end) of a parameter list, default
/// argument stripped. Heuristic by design: function-pointer and array
/// declarators degrade to a name the caller never matches, which errs
/// toward exemption.
ParamInfo parse_one_param(const Tokens& t, std::size_t start,
                          std::size_t end) {
  ParamInfo p;
  int depth = 0;
  int angle = 0;
  std::size_t stop = end;
  for (std::size_t j = start; j < end; ++j) {
    const Token& tok = t[j];
    if (tok.kind != TokKind::kPunct) continue;
    if (any_open(tok)) ++depth;
    if (any_close(tok)) --depth;
    if (tok.text == "<") ++angle;
    if (tok.text == ">") angle = angle > 0 ? angle - 1 : 0;
    if (tok.text == ">>") angle = angle > 1 ? angle - 2 : 0;
    if (depth == 0 && angle == 0 && tok.text == "=") {
      stop = j;
      break;
    }
  }
  bool has_ref = false;
  bool has_const = false;
  depth = 0;
  angle = 0;
  for (std::size_t j = start; j < stop; ++j) {
    const Token& tok = t[j];
    if (is_ident(tok, "const")) has_const = true;
    if (tok.kind != TokKind::kPunct) continue;
    if (any_open(tok)) ++depth;
    if (any_close(tok)) --depth;
    if (tok.text == "<") ++angle;
    if (tok.text == ">") angle = angle > 0 ? angle - 1 : 0;
    if (tok.text == ">>") angle = angle > 1 ? angle - 2 : 0;
    if (depth == 0 && angle == 0 && (tok.text == "&" || tok.text == "*")) {
      has_ref = true;
    }
  }
  p.mutable_ref = has_ref && !has_const;
  // A single token is a bare type (unnamed parameter); otherwise the name
  // is the last identifier of the declarator.
  if (stop >= start + 2) {
    for (std::size_t j = stop; j-- > start;) {
      if (t[j].kind == TokKind::kIdentifier) {
        p.name = t[j].text;
        break;
      }
    }
  }
  return p;
}

/// Parameters of the list opening at `open` ('('). `()` and `(void)`
/// parse to an empty vector.
std::vector<ParamInfo> parse_params(const Tokens& t, std::size_t open) {
  std::vector<ParamInfo> params;
  const std::size_t close = match_paren_close(t, open);
  if (close == kNoFunction) return params;
  std::size_t start = open + 1;
  int depth = 0;
  int angle = 0;
  auto flush = [&](std::size_t end) {
    if (end > start && !(end == start + 1 && is_ident(t[start], "void"))) {
      params.push_back(parse_one_param(t, start, end));
    }
    start = end + 1;
  };
  for (std::size_t j = open + 1; j < close; ++j) {
    const Token& tok = t[j];
    if (tok.kind != TokKind::kPunct) continue;
    if (any_open(tok)) ++depth;
    if (any_close(tok)) --depth;
    if (tok.text == "<") ++angle;
    if (tok.text == ">") angle = angle > 0 ? angle - 1 : 0;
    if (tok.text == ">>") angle = angle > 1 ? angle - 2 : 0;
    if (depth == 0 && angle == 0 && tok.text == ",") flush(j);
  }
  flush(close);
  return params;
}

bool set_fact(Fact* fact, const std::string& what) {
  if (fact->holds) return false;
  fact->holds = true;
  fact->what = what;
  fact->via = kNoFunction;
  return true;
}

void mark_param_write(FunctionInfo* fn, const Tokens& t, const Lvalue& lv) {
  if (!lv.ok) return;
  // An indexed write (`out[i] = ...`) is usually per-element and callers
  // commonly pass disjoint slices per iteration; recording it would turn
  // every parallel helper call into a finding. Only whole-object writes
  // (`total += x`, `v.push_back(x)`, `*p = x`, `buf[0] = x`) become
  // summary facts — a documented false-negative shape.
  for (const TokenRange& g : lv.groups) {
    for (std::size_t j = g.begin; j < g.end; ++j) {
      if (t[j].kind == TokKind::kIdentifier) return;
    }
  }
  for (std::size_t pi = 0; pi < fn->params.size(); ++pi) {
    if (fn->params[pi].name != lv.base || !fn->params[pi].mutable_ref) {
      continue;
    }
    if (fn->writes.count(pi) == 0) fn->writes[pi] = ParamWrite{};
  }
}

/// Direct (non-transitive) summary facts from one function body, using
/// the same token shapes as the omp-race and hot-path-purity scans.
void scan_direct_facts(const Tokens& t,
                       const std::vector<DirectiveExtent>& dirs,
                       FunctionInfo* fn) {
  const std::size_t begin = fn->body.begin;
  const std::size_t end = fn->body.end > 0 ? fn->body.end - 1 : 0;
  for (std::size_t w = begin + 1; w < end; ++w) {
    const DirectiveExtent* d = covering_directive(dirs, w);
    if (d != nullptr) {
      w = d->end - 1;
      continue;
    }
    const Token& tok = t[w];
    const bool member =
        w > begin && (is_punct(t[w - 1], ".") || is_punct(t[w - 1], "->"));
    const bool called = w + 1 < end && is_punct(t[w + 1], "(");
    const bool scoped = w > begin && is_punct(t[w - 1], "::");
    if (tok.kind == TokKind::kIdentifier) {
      if (tok.text == "new" && !member) {
        set_fact(&fn->allocates, "new");
      } else if (heap_fns().count(tok.text) != 0 && called && !member) {
        set_fact(&fn->allocates, tok.text);
      } else if (io_fns().count(tok.text) != 0 && called && !member) {
        set_fact(&fn->does_io, tok.text);
      } else if (io_streams().count(tok.text) != 0 && scoped) {
        set_fact(&fn->does_io, "std::" + tok.text);
      } else if (lock_types().count(tok.text) != 0 && scoped) {
        set_fact(&fn->locks, "std::" + tok.text);
      } else if ((tok.text == "lock" || tok.text == "unlock" ||
                  tok.text == "try_lock") &&
                 member && called) {
        set_fact(&fn->locks, "." + tok.text + "()");
      } else if (collective_names().count(tok.text) != 0 && member &&
                 called) {
        set_fact(&fn->enters_collective, tok.text);
      } else if (mutating_methods().count(tok.text) != 0 && member &&
                 called && w >= begin + 2) {
        mark_param_write(fn, t, walk_lvalue_back(t, w - 2, begin));
      }
      continue;
    }
    if (tok.kind != TokKind::kPunct) continue;
    if (assign_ops().count(tok.text) != 0 && w > begin + 1 &&
        !is_ident(t[w - 1], "operator")) {
      mark_param_write(fn, t, walk_lvalue_back(t, w - 1, begin));
    } else if (tok.text == "++" || tok.text == "--") {
      if (t[w - 1].kind == TokKind::kIdentifier || is_punct(t[w - 1], "]") ||
          is_punct(t[w - 1], ")")) {
        mark_param_write(fn, t, walk_lvalue_back(t, w - 1, begin));
      } else if (w + 1 < end && t[w + 1].kind == TokKind::kIdentifier) {
        Lvalue lv;
        lv.ok = true;
        lv.base = t[w + 1].text;
        lv.chain_begin = w + 1;
        lv.chain_end = w + 2;
        mark_param_write(fn, t, lv);
      }
    }
  }
}

/// Function definitions of one TU. The head is parsed forward from the
/// previous statement boundary: the first depth-0 '(' preceded by a
/// plausible name opens the parameter list. Lambdas, operators, and
/// brace initializers find no name and are skipped (degrade to unknown).
std::vector<FunctionInfo> discover_tu(const LexedFile& file,
                                      std::size_t file_index) {
  std::vector<FunctionInfo> out;
  const Tokens& t = file.tokens;
  const std::vector<DirectiveExtent>& dirs = file.directives;
  for (const TokenRange& body : function_bodies(t)) {
    std::size_t head = body.begin;
    while (head > 0) {
      const DirectiveExtent* d = covering_directive(dirs, head - 1);
      if (d != nullptr) {
        head = d->begin;
        continue;
      }
      const Token& p = t[head - 1];
      if (is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}")) break;
      --head;
    }
    std::size_t name_tok = kNoFunction;
    std::size_t params_open = kNoFunction;
    std::size_t j = head;
    while (j < body.begin) {
      const DirectiveExtent* d = covering_directive(dirs, j);
      if (d != nullptr) {
        j = d->end;
        continue;
      }
      if (is_punct(t[j], "(")) {
        if (j > head && t[j - 1].kind == TokKind::kIdentifier &&
            !definition_name_banned(t[j - 1].text)) {
          name_tok = j - 1;
          params_open = j;
          break;
        }
        // decltype(...), attribute groups, lambda captures: skip.
        const std::size_t close = match_paren_close(t, j);
        if (close == kNoFunction) break;
        j = close + 1;
        continue;
      }
      ++j;
    }
    if (name_tok == kNoFunction) continue;

    FunctionInfo fn;
    fn.name = t[name_tok].text;
    fn.file = file_index;
    fn.path = file.path;
    fn.line = t[body.begin].line;
    fn.body = body;
    fn.params = parse_params(t, params_open);
    scan_direct_facts(t, dirs, &fn);
    out.push_back(std::move(fn));
  }
  return out;
}

/// The argument as a plain forwarded lvalue: `name`, `&name`, or
/// `*name`. Anything else (expressions, offsets, literals) returns empty
/// — parameter writes do not propagate through what we cannot name.
std::string plain_arg_name(const Tokens& t, const TokenRange& r) {
  if (r.end == r.begin + 1 && t[r.begin].kind == TokKind::kIdentifier) {
    return t[r.begin].text;
  }
  if (r.end == r.begin + 2 &&
      (is_punct(t[r.begin], "&") || is_punct(t[r.begin], "*")) &&
      t[r.begin + 1].kind == TokKind::kIdentifier) {
    return t[r.begin + 1].text;
  }
  return {};
}

bool inherit(Fact* dst, const Fact& src, std::size_t via) {
  if (!src.holds || dst->holds) return false;
  dst->holds = true;
  dst->what = src.what;
  dst->via = via;
  return true;
}

}  // namespace

int effective_jobs(int jobs) {
#ifdef _OPENMP
  return jobs > 0 ? jobs : omp_get_max_threads();
#else
  (void)jobs;
  return 1;
#endif
}

/// Per-TU discovery for every file, OpenMP-parallel. Embarrassingly
/// parallel and deterministic: each worker writes only its own slot.
/// Kept as its own function so the omp region stays free of container
/// growth (the analyzer checks itself).
std::vector<std::vector<FunctionInfo>> discover_all(
    const std::vector<LexedFile>& files, int jobs) {
  std::vector<std::vector<FunctionInfo>> scans(files.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(files.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic) num_threads(effective_jobs(jobs))
#else
  (void)jobs;
#endif
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    scans[u] = discover_tu(files[u], u);
  }
  return scans;
}

CallGraph CallGraph::build(const std::vector<LexedFile>& files, int jobs) {
  CallGraph g;

  // Per-TU discovery is parallel; everything after it (indexing,
  // resolution, propagation) is cheap and stays serial for determinism.
  std::vector<std::vector<FunctionInfo>> scans = discover_all(files, jobs);

  std::size_t total = 0;
  for (const std::vector<FunctionInfo>& s : scans) total += s.size();
  g.functions_.reserve(total);
  for (std::vector<FunctionInfo>& s : scans) {
    for (FunctionInfo& fn : s) g.functions_.push_back(std::move(fn));
  }
  for (std::size_t f = 0; f < g.functions_.size(); ++f) {
    g.by_name_[g.functions_[f].name].push_back(f);
  }

  // Resolve call sites into the edge list.
  struct Edge {
    std::size_t callee;
    std::vector<TokenRange> args;
  };
  std::vector<std::vector<Edge>> edges(g.functions_.size());
  for (std::size_t f = 0; f < g.functions_.size(); ++f) {
    const FunctionInfo& fn = g.functions_[f];
    const Tokens& t = files[fn.file].tokens;
    const std::vector<DirectiveExtent>& dirs = files[fn.file].directives;
    const std::size_t end = fn.body.end > 0 ? fn.body.end - 1 : 0;
    for (std::size_t w = fn.body.begin + 1; w < end; ++w) {
      const DirectiveExtent* d = covering_directive(dirs, w);
      if (d != nullptr) {
        w = d->end - 1;
        continue;
      }
      const std::size_t callee = g.resolve_call(t, w, fn.file);
      if (callee == kNoFunction) continue;
      edges[f].push_back(Edge{callee, call_args(t, w)});
    }
  }

  // Iterative Tarjan: SCCs complete callee-first, which is exactly the
  // order bottom-up summary propagation needs.
  const std::size_t nf = g.functions_.size();
  std::vector<std::size_t> order(nf, kNoFunction);
  std::vector<std::size_t> low(nf, 0);
  std::vector<char> on_stack(nf, 0);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> sccs;
  std::size_t counter = 0;
  struct Frame {
    std::size_t v;
    std::size_t edge;
  };
  for (std::size_t root = 0; root < nf; ++root) {
    if (order[root] != kNoFunction) continue;
    std::vector<Frame> frames{Frame{root, 0}};
    order[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.edge < edges[fr.v].size()) {
        const std::size_t next = edges[fr.v][fr.edge].callee;
        ++fr.edge;
        if (order[next] == kNoFunction) {
          order[next] = low[next] = counter++;
          stack.push_back(next);
          on_stack[next] = 1;
          frames.push_back(Frame{next, 0});  // invalidates fr
        } else if (on_stack[next] != 0) {
          low[fr.v] = std::min(low[fr.v], order[next]);
        }
        continue;
      }
      const std::size_t v = fr.v;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
      if (low[v] == order[v]) {
        std::vector<std::size_t> scc;
        while (true) {
          const std::size_t member = stack.back();
          stack.pop_back();
          on_stack[member] = 0;
          scc.push_back(member);
          if (member == v) break;
        }
        sccs.push_back(std::move(scc));
      }
    }
  }

  // Bottom-up propagation; within an SCC (mutual recursion) iterate to a
  // fixpoint — facts only ever flip false -> true, so this terminates.
  for (const std::vector<std::size_t>& scc : sccs) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const std::size_t f : scc) {
        FunctionInfo& fn = g.functions_[f];
        const Tokens& t = files[fn.file].tokens;
        for (const Edge& e : edges[f]) {
          const FunctionInfo& callee = g.functions_[e.callee];
          changed |= inherit(&fn.allocates, callee.allocates, e.callee);
          changed |= inherit(&fn.does_io, callee.does_io, e.callee);
          changed |= inherit(&fn.locks, callee.locks, e.callee);
          changed |= inherit(&fn.enters_collective, callee.enters_collective,
                             e.callee);
          for (const auto& [k, unused] : callee.writes) {
            (void)unused;
            if (k >= e.args.size()) continue;
            const std::string arg = plain_arg_name(t, e.args[k]);
            if (arg.empty()) continue;
            for (std::size_t pi = 0; pi < fn.params.size(); ++pi) {
              if (fn.params[pi].name != arg || !fn.params[pi].mutable_ref) {
                continue;
              }
              if (fn.writes.count(pi) == 0) {
                fn.writes[pi] = ParamWrite{e.callee, k};
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  return g;
}

std::size_t CallGraph::resolve_call(const Tokens& t, std::size_t i,
                                    std::size_t file_index) const {
  if (i >= t.size() || t[i].kind != TokKind::kIdentifier) return kNoFunction;
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return kNoFunction;
  if (call_name_banned(t[i].text)) return kNoFunction;
  if (i > 0) {
    const Token& prev = t[i - 1];
    if (prev.kind == TokKind::kPunct &&
        (prev.text == "." || prev.text == "->" || prev.text == "->*" ||
         prev.text == ".*" || prev.text == ">" || prev.text == "*" ||
         prev.text == "&" || prev.text == "&&" || prev.text == "~")) {
      // Member access, member-pointer dispatch, or a declaration shape
      // (`std::vector<int> v(3)`, `Foo* make(...)`): unknown.
      return kNoFunction;
    }
    if (is_punct(prev, "::")) {
      // Walk the qualifier chain to its head; the standard library is
      // not part of this project's call graph.
      std::size_t j = i;
      while (j >= 2 && is_punct(t[j - 1], "::") &&
             t[j - 2].kind == TokKind::kIdentifier) {
        j -= 2;
      }
      if (t[j].text == "std") return kNoFunction;
    } else if (prev.kind == TokKind::kIdentifier &&
               !prev_allows_call(prev.text)) {
      return kNoFunction;  // `Type name(...)`: a declaration, not a call
    }
  }
  const auto it = by_name_.find(t[i].text);
  if (it == by_name_.end()) return kNoFunction;
  const std::size_t arity = call_args(t, i).size();
  std::vector<std::size_t> pool;
  for (const std::size_t c : it->second) {
    if (functions_[c].params.size() == arity) pool.push_back(c);
  }
  if (pool.empty()) {
    // Arity mismatch; a project-unique name still binds (default
    // arguments, variadic tails). Overload sets stay unknown.
    return it->second.size() == 1 ? it->second[0] : kNoFunction;
  }
  if (pool.size() == 1) return pool[0];
  // Same-name-same-arity in several TUs (anonymous-namespace helpers):
  // internal linkage means the same-file definition wins, if unique.
  std::size_t same_file = kNoFunction;
  for (const std::size_t c : pool) {
    if (functions_[c].file != file_index) continue;
    if (same_file != kNoFunction) return kNoFunction;
    same_file = c;
  }
  return same_file;
}

std::vector<TokenRange> CallGraph::call_args(const Tokens& t, std::size_t i) {
  std::vector<TokenRange> args;
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return args;
  const std::size_t open = i + 1;
  int depth = 0;
  std::size_t start = open + 1;
  for (std::size_t j = open; j < t.size(); ++j) {
    const Token& tok = t[j];
    if (any_open(tok)) {
      ++depth;
      continue;
    }
    if (any_close(tok)) {
      --depth;
      if (depth == 0) {
        if (j > open + 1) args.push_back(TokenRange{start, j});
        return args;
      }
      continue;
    }
    if (depth == 1 && is_punct(tok, ",")) {
      args.push_back(TokenRange{start, j});
      start = j + 1;
    }
  }
  return {};  // unbalanced
}

std::string CallGraph::fact_chain(std::size_t fn,
                                  Fact FunctionInfo::*fact) const {
  std::string out = functions_[fn].name;
  std::size_t cur = (functions_[fn].*fact).via;
  for (std::size_t guard = 0; cur != kNoFunction && guard < 64; ++guard) {
    out += " -> " + functions_[cur].name;
    cur = (functions_[cur].*fact).via;
  }
  return out;
}

std::string CallGraph::write_chain(std::size_t fn, std::size_t param) const {
  std::string out = functions_[fn].name;
  std::size_t cur = fn;
  std::size_t p = param;
  for (std::size_t guard = 0; guard < 64; ++guard) {
    const auto it = functions_[cur].writes.find(p);
    if (it == functions_[cur].writes.end() ||
        it->second.via == kNoFunction) {
      break;
    }
    out += " -> " + functions_[it->second.via].name;
    p = it->second.via_param;
    cur = it->second.via;
  }
  return out;
}

}  // namespace lrt::analyze
