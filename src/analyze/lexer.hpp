// Comment- and string-aware C++ lexer for the lrt-analyze passes.
//
// This is not a compiler front end: it produces a flat token stream good
// enough for the project-specific pattern checks in passes.hpp — the
// property the old grep-based gates lacked is exactly what this layer
// guarantees, that nothing inside a comment, string literal (including
// raw strings), or character literal ever reaches a pass. Preprocessor
// include paths are lexed as their own token kind so `#include "la/x.hpp"`
// is distinguishable from an ordinary string literal.
//
// Suppression directives are collected during lexing: a comment of the
// form
//
//   // lrt-analyze: allow(pass-name)            one pass
//   // lrt-analyze: allow(pass-a, pass-b)       several passes
//   // lrt-analyze: allow(all)                  every pass
//
// suppresses findings on the directive's own line and on the following
// line (so a standalone comment line covers the statement under it).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lrt::analyze {

enum class TokKind {
  kIdentifier,   ///< identifiers and keywords (no keyword table needed)
  kNumber,       ///< pp-number (1e-3, 0xFF, 1'000'000, ...)
  kString,       ///< string literal; text holds the raw inner characters
  kCharLit,      ///< character literal
  kPunct,        ///< operator/punctuator, multi-character where standard
  kIncludePath,  ///< path of a `#include "..."` (quoted form)
  kSysInclude,   ///< path of a `#include <...>` (angle form)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

/// Token extent of one preprocessor directive (everything except
/// `#include`, whose path becomes its own token kind). Line splices
/// (backslash-newline) extend a directive across physical lines, so
/// passes that parse `#pragma omp` clause lists must use these extents —
/// not line numbers — to find where a directive ends.
struct DirectiveExtent {
  std::size_t begin = 0;  ///< token index of the '#'
  std::size_t end = 0;    ///< one past the directive's last token
};

/// One lexed translation unit plus the side tables the passes need.
struct LexedFile {
  std::string path;  ///< repo-relative, forward slashes
  std::vector<Token> tokens;
  /// Non-include preprocessor directives, in token order.
  std::vector<DirectiveExtent> directives;
  /// Line number -> pass names allowed by a suppression directive on or
  /// just above that line ("all" allows every pass).
  std::map<int, std::set<std::string>> allowed;

  /// True when `pass` findings on `line` are suppressed by a directive.
  bool suppressed(const std::string& pass, int line) const;
};

/// Lexes `text` (the contents of `path`). Never throws on malformed
/// input: an unterminated comment/literal simply ends at EOF — the
/// compiler proper is the authority on well-formedness.
LexedFile lex(std::string path, const std::string& text);

}  // namespace lrt::analyze
