#include "analyze/lexer.hpp"

#include <array>
#include <cstddef>
#include <string_view>

namespace lrt::analyze {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_ident_char(char c) { return is_ident_start(c) || (c >= '0' && c <= '9'); }

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// Multi-character punctuators, longest first so the longest match wins.
constexpr std::array<std::string_view, 27> kPuncts = {
    "...", "<=>", "<<=", ">>=", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "##",  ".*"};

/// Scans a comment body for `lrt-analyze: allow(a, b)` and records the
/// named passes against `line` and `line + 1`.
void collect_directive(const std::string& comment, int line, LexedFile* out) {
  const std::string marker = "lrt-analyze:";
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) return;
  pos = comment.find("allow(", pos + marker.size());
  if (pos == std::string::npos) return;
  pos += 6;  // past "allow("
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  std::string name;
  auto flush = [&]() {
    if (!name.empty()) {
      out->allowed[line].insert(name);
      out->allowed[line + 1].insert(name);
      name.clear();
    }
  };
  for (std::size_t i = pos; i < close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ' ' || c == '\t') {
      if (c == ',') flush();
      continue;
    }
    name.push_back(c);
  }
  flush();
}

class Lexer {
 public:
  Lexer(std::string path, const std::string& text)
      : text_(text) {
    out_.path = std::move(path);
  }

  LexedFile run() {
    while (!eof()) step();
    close_directive();
    return std::move(out_);
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      at_line_start_ = true;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    const char c = peek();
    // Line splice: backslash-newline vanishes in translation phase 2.
    if (c == '\\' && (peek(1) == '\n' || (peek(1) == '\r' && peek(2) == '\n'))) {
      advance();
      while (!eof() && text_[pos_] != '\n') advance();
      if (!eof()) advance();
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      // A directive ends at the first newline that is NOT consumed by the
      // splice branch above — that is exactly how translation phases 2/4
      // define its extent.
      if (c == '\n') close_directive();
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      directive();
      return;
    }
    at_line_start_ = false;
    if (is_ident_start(c)) {
      identifier();
      return;
    }
    if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
      number();
      return;
    }
    if (c == '"') {
      string_literal(/*raw=*/false);
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    punct();
  }

  void line_comment() {
    const int line = line_;
    std::string body;
    while (!eof() && peek() != '\n') {
      body.push_back(peek());
      advance();
    }
    collect_directive(body, line, &out_);
  }

  void block_comment() {
    const int line = line_;
    std::string body;
    advance();  // '/'
    advance();  // '*'
    while (!eof() && !(peek() == '*' && peek(1) == '/')) {
      body.push_back(peek());
      advance();
    }
    if (!eof()) {
      advance();
      advance();
    }
    collect_directive(body, line, &out_);
  }

  /// Preprocessor directive. `#include` paths get their own token kinds;
  /// everything else lexes as ordinary tokens (so `#pragma once` shows up
  /// as '#' 'pragma' 'once') and records a DirectiveExtent spanning every
  /// token up to the first un-spliced newline.
  void directive() {
    const int line = line_;
    const std::size_t hash_index = out_.tokens.size();
    emit(TokKind::kPunct, "#", line);
    advance();
    at_line_start_ = false;
    while (!eof() && (peek() == ' ' || peek() == '\t')) advance();
    std::size_t start = pos_;
    while (!eof() && is_ident_char(peek())) advance();
    const std::string name = text_.substr(start, pos_ - start);
    if (!name.empty()) emit(TokKind::kIdentifier, name, line);
    if (name != "include") {
      in_directive_ = true;
      directive_begin_ = hash_index;
      return;
    }
    while (!eof() && (peek() == ' ' || peek() == '\t')) advance();
    if (peek() == '"') {
      advance();
      start = pos_;
      while (!eof() && peek() != '"' && peek() != '\n') advance();
      emit(TokKind::kIncludePath, text_.substr(start, pos_ - start), line);
      if (peek() == '"') advance();
    } else if (peek() == '<') {
      advance();
      start = pos_;
      while (!eof() && peek() != '>' && peek() != '\n') advance();
      emit(TokKind::kSysInclude, text_.substr(start, pos_ - start), line);
      if (peek() == '>') advance();
    }
  }

  void identifier() {
    const int line = line_;
    const std::size_t start = pos_;
    while (!eof() && is_ident_char(peek())) advance();
    const std::string name = text_.substr(start, pos_ - start);
    // Encoding / raw-string prefixes glued to a quote are literals, not
    // identifiers: R"(..)", u8"..", L'x', ...
    if (peek() == '"' && (name == "R" || name == "u8R" || name == "uR" ||
                          name == "LR" || name == "UR")) {
      string_literal(/*raw=*/true);
      return;
    }
    if (peek() == '"' &&
        (name == "u8" || name == "u" || name == "L" || name == "U")) {
      string_literal(/*raw=*/false);
      return;
    }
    if (peek() == '\'' &&
        (name == "u8" || name == "u" || name == "L" || name == "U")) {
      char_literal();
      return;
    }
    emit(TokKind::kIdentifier, name, line);
  }

  /// pp-number: digits plus identifier chars, quotes as digit separators,
  /// and sign characters after an exponent marker.
  void number() {
    const int line = line_;
    const std::size_t start = pos_;
    advance();
    while (!eof()) {
      const char c = peek();
      if (is_ident_char(c) || c == '.') {
        advance();
      } else if (c == '\'' && is_ident_char(peek(1))) {
        advance();
        advance();
      } else if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
        } else {
          break;
        }
      } else {
        break;
      }
    }
    emit(TokKind::kNumber, text_.substr(start, pos_ - start), line);
  }

  void string_literal(bool raw) {
    const int line = line_;
    std::string body;
    advance();  // opening quote
    if (raw) {
      std::string delim;
      while (!eof() && peek() != '(') {
        delim.push_back(peek());
        advance();
      }
      if (!eof()) advance();  // '('
      const std::string closer = ")" + delim + "\"";
      while (!eof()) {
        if (peek() == ')' &&
            text_.compare(pos_, closer.size(), closer) == 0) {
          for (std::size_t i = 0; i < closer.size(); ++i) advance();
          break;
        }
        body.push_back(peek());
        advance();
      }
    } else {
      while (!eof() && peek() != '"' && peek() != '\n') {
        if (peek() == '\\' && pos_ + 1 < text_.size()) {
          body.push_back(peek());
          advance();
        }
        body.push_back(peek());
        advance();
      }
      if (peek() == '"') advance();
    }
    emit(TokKind::kString, std::move(body), line);
  }

  void char_literal() {
    const int line = line_;
    std::string body;
    advance();  // opening quote
    while (!eof() && peek() != '\'' && peek() != '\n') {
      if (peek() == '\\' && pos_ + 1 < text_.size()) {
        body.push_back(peek());
        advance();
      }
      body.push_back(peek());
      advance();
    }
    if (peek() == '\'') advance();
    emit(TokKind::kCharLit, std::move(body), line);
  }

  void punct() {
    const int line = line_;
    for (const std::string_view p : kPuncts) {
      if (text_.compare(pos_, p.size(), p) == 0) {
        for (std::size_t i = 0; i < p.size(); ++i) advance();
        emit(TokKind::kPunct, std::string(p), line);
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, peek()), line);
    advance();
  }

  void close_directive() {
    if (!in_directive_) return;
    in_directive_ = false;
    if (out_.tokens.size() > directive_begin_) {
      out_.directives.push_back(
          DirectiveExtent{directive_begin_, out_.tokens.size()});
    }
  }

  const std::string& text_;
  LexedFile out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool in_directive_ = false;
  std::size_t directive_begin_ = 0;
};

}  // namespace

bool LexedFile::suppressed(const std::string& pass, int line) const {
  const auto it = allowed.find(line);
  if (it == allowed.end()) return false;
  return it->second.count(pass) != 0 || it->second.count("all") != 0;
}

LexedFile lex(std::string path, const std::string& text) {
  return Lexer(std::move(path), text).run();
}

}  // namespace lrt::analyze
