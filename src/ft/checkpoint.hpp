// Versioned binary checkpoints (lrt.ckpt/1) with atomic writes.
//
// File layout (native endianness — checkpoints restart runs on the same
// machine, they are not an interchange format):
//
//   magic   8 bytes  "lrt.ckpt"
//   version u32      1
//   nsect   u32      section count
//   per section:
//     name_len u32, name bytes, size u64, crc u32 (CRC32/IEEE of the
//     payload), payload bytes
//
// Writes go to `path + ".tmp"` and are renamed into place, so a reader
// never sees a half-written checkpoint: either the old complete file or
// the new complete file. Every reader failure mode — missing file, bad
// magic, wrong version, truncation, checksum mismatch, missing section,
// shape mismatch — surfaces as a typed CheckpointError; a corrupt
// checkpoint can never restore silently wrong state. See
// docs/RESILIENCE.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "grid/unitcell.hpp"
#include "la/lobpcg.hpp"
#include "la/matrix.hpp"

namespace lrt::ft {

/// What a checkpoint restore failed on.
enum class CheckpointFault {
  kIo,             ///< file missing or unreadable
  kBadMagic,       ///< not an lrt.ckpt file
  kBadVersion,     ///< format version this build does not understand
  kTruncated,      ///< file ends mid-structure
  kBadCrc,         ///< section checksum mismatch (bit rot / torn write)
  kMissingSection, ///< structurally valid but lacks a required section
  kBadShape,       ///< section present but sized wrong for its type
};

const char* to_string(CheckpointFault fault);

class CheckpointError : public Error {
 public:
  CheckpointError(CheckpointFault fault, const std::string& what);
  CheckpointFault fault() const { return fault_; }

 private:
  CheckpointFault fault_;
};

/// CRC32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);

/// Accumulates named sections, then writes them atomically.
class CheckpointWriter {
 public:
  void add(const std::string& name, const void* data, std::size_t size);

  /// Any trivially copyable struct as one section.
  template <typename T>
  void add_pod(const std::string& name, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    add(name, &value, sizeof(T));
  }

  template <typename T>
  void add_array(const std::string& name, const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    add(name, values.data(), values.size() * sizeof(T));
  }

  /// Dense matrix with its shape; accepts strided views.
  void add_matrix(const std::string& name, la::RealConstView m);

  /// Temp-file + rename; throws CheckpointError(kIo) on write failure.
  void write(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::vector<unsigned char> payload;
  };
  std::vector<Section> sections_;
};

/// Parses and CRC-validates a checkpoint on construction.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::string& path);

  bool has(const std::string& name) const;

  /// Throws CheckpointError(kMissingSection) for unknown names.
  const std::vector<unsigned char>& section(const std::string& name) const;

  template <typename T>
  T pod(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<unsigned char>& s = section(name);
    if (s.size() != sizeof(T)) throw_shape(name, sizeof(T), s.size());
    T value;
    std::memcpy(&value, s.data(), sizeof(T));
    return value;
  }

  template <typename T>
  std::vector<T> array(const std::string& name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<unsigned char>& s = section(name);
    if (s.size() % sizeof(T) != 0) throw_shape(name, sizeof(T), s.size());
    std::vector<T> values(s.size() / sizeof(T));
    if (!values.empty()) std::memcpy(values.data(), s.data(), s.size());
    return values;
  }

  la::RealMatrix matrix(const std::string& name) const;

 private:
  [[noreturn]] static void throw_shape(const std::string& name,
                                       std::size_t unit, std::size_t actual);

  std::map<std::string, std::vector<unsigned char>> sections_;
};

/// True when a complete checkpoint exists at `path`. A leftover
/// `path + ".tmp"` from an interrupted write never counts: the rename
/// never happened, so the previous complete state (or none) is the truth.
bool checkpoint_exists(const std::string& path);

// ----- solver adapters -------------------------------------------------------

/// LOBPCG snapshots (serial, or one per-rank row slab for dist_lobpcg).
void save_lobpcg(const la::LobpcgCheckpoint& state, const std::string& path);
la::LobpcgCheckpoint load_lobpcg(const std::string& path);

/// End-of-iteration state of a (distributed) weighted K-Means run;
/// `objective` is the converged-so-far objective used by the tolerance
/// test, `rng` resumes the serial solver's reseeding stream mid-sequence
/// (the distributed solver draws no randomness and leaves has_rng false).
struct KMeansState {
  std::vector<grid::Vec3> centroids;
  Index iteration = 0;
  Real objective = 0;
  bool has_rng = false;
  RngState rng;
};

void save_kmeans(const KMeansState& state, const std::string& path);
KMeansState load_kmeans(const std::string& path);

}  // namespace lrt::ft
