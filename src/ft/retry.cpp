#include "ft/retry.hpp"

#include "obs/counters.hpp"

namespace lrt::ft {

RetrySite default_retry_site() {
  static RetrySite site{&obs::counter("ft.retry.attempts"),
                        &obs::counter("ft.retry.exhausted")};
  return site;
}

void Retry::count_attempt() { site_.attempts->add(1); }

void Retry::count_exhausted() { site_.exhausted->add(1); }

void Retry::backoff(int attempt) {
  // Exponential with a cap: base, 2*base, 4*base, ... clamped to max.
  long long us = options_.base_backoff_us;
  for (int i = 0; i < attempt && us < options_.max_backoff_us; ++i) us *= 2;
  if (us > options_.max_backoff_us) us = options_.max_backoff_us;
  if (plan_ != nullptr) us += plan_->jitter_us(rank_, us);
  spin_wait_us(us);
}

}  // namespace lrt::ft
