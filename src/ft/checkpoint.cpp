#include "ft/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"

namespace lrt::ft {
namespace {

constexpr char kMagic[8] = {'l', 'r', 't', '.', 'c', 'k', 'p', 't'};
constexpr std::uint32_t kVersion = 1;

/// Fixed-shape header prepended to matrix payloads.
struct MatrixHeader {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

/// Fixed-shape metadata of the solver adapters.
struct LobpcgMeta {
  std::int64_t iteration = 0;
};

struct KMeansMeta {
  std::int64_t iteration = 0;
  Real objective = 0;
  std::int32_t has_rng = 0;
};

[[noreturn]] void fail(CheckpointFault fault, const std::string& detail) {
  throw CheckpointError(fault, detail);
}

void append_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

void append_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(v));
  std::memcpy(out.data() + at, &v, sizeof(v));
}

// resize + memcpy rather than vector::insert: GCC 12's -Werror build
// under -fsanitize=thread flags the insert's inlined reallocation path
// with a spurious stringop-overflow warning.
void append_bytes(std::vector<unsigned char>& out, const void* data,
                  std::size_t n) {
  if (n == 0) return;
  const std::size_t at = out.size();
  out.resize(at + n);
  std::memcpy(out.data() + at, data, n);
}

/// Bounds-checked cursor over the raw file image.
class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  void read(void* out, std::size_t n, const char* what) {
    if (n == 0) return;
    if (pos_ + n > size_) {
      std::ostringstream os;
      os << "checkpoint truncated reading " << what << " (need " << n
         << " bytes at offset " << pos_ << " of " << size_ << ")";
      fail(CheckpointFault::kTruncated, os.str());
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t v = 0;
    read(&v, sizeof(v), what);
    return v;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t v = 0;
    read(&v, sizeof(v), what);
    return v;
  }

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(CheckpointFault fault) {
  switch (fault) {
    case CheckpointFault::kIo:
      return "io";
    case CheckpointFault::kBadMagic:
      return "bad-magic";
    case CheckpointFault::kBadVersion:
      return "bad-version";
    case CheckpointFault::kTruncated:
      return "truncated";
    case CheckpointFault::kBadCrc:
      return "bad-crc";
    case CheckpointFault::kMissingSection:
      return "missing-section";
    case CheckpointFault::kBadShape:
      return "bad-shape";
  }
  return "unknown";
}

CheckpointError::CheckpointError(CheckpointFault fault,
                                 const std::string& what)
    : Error(std::string("checkpoint [") + to_string(fault) + "]: " + what),
      fault_(fault) {}

std::uint32_t crc32(const void* data, std::size_t size) {
  // Table-driven CRC32 (IEEE, reflected polynomial 0xEDB88320).
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void CheckpointWriter::add(const std::string& name, const void* data,
                           std::size_t size) {
  Section section;
  section.name = name;
  section.payload.resize(size);
  if (size > 0) std::memcpy(section.payload.data(), data, size);
  sections_.push_back(std::move(section));
}

void CheckpointWriter::add_matrix(const std::string& name,
                                  la::RealConstView m) {
  MatrixHeader header;
  header.rows = m.rows();
  header.cols = m.cols();
  std::vector<unsigned char> payload;
  payload.resize(sizeof(header));
  std::memcpy(payload.data(), &header, sizeof(header));
  // Row-by-row: views may be strided windows of a larger matrix.
  for (Index i = 0; i < m.rows(); ++i) {
    const std::size_t at = payload.size();
    const std::size_t row_bytes =
        static_cast<std::size_t>(m.cols()) * sizeof(Real);
    payload.resize(at + row_bytes);
    std::memcpy(payload.data() + at, m.row_ptr(i), row_bytes);
  }
  add(name, payload.data(), payload.size());
}

void CheckpointWriter::write(const std::string& path) const {
  const obs::Span span("ft.checkpoint.save");
  std::vector<unsigned char> image;
  append_bytes(image, kMagic, sizeof(kMagic));
  append_u32(image, kVersion);
  append_u32(image, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_u32(image, static_cast<std::uint32_t>(s.name.size()));
    append_bytes(image, s.name.data(), s.name.size());
    append_u64(image, s.payload.size());
    append_u32(image, crc32(s.payload.data(), s.payload.size()));
    append_bytes(image, s.payload.data(), s.payload.size());
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(CheckpointFault::kIo, "cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) fail(CheckpointFault::kIo, "short write to " + tmp);
  }
  // Atomic publish: rename is all-or-nothing within a filesystem, so a
  // crash here leaves either the old checkpoint or the new one — never a
  // torn file under the real name.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(CheckpointFault::kIo, "cannot rename " + tmp + " to " + path);
  }
}

CheckpointReader::CheckpointReader(const std::string& path) {
  const obs::Span span("ft.checkpoint.load");
  std::vector<unsigned char> image;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) fail(CheckpointFault::kIo, "cannot open " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    image.resize(static_cast<std::size_t>(size));
    if (size > 0) {
      in.read(reinterpret_cast<char*>(image.data()), size);
    }
    if (!in) fail(CheckpointFault::kIo, "cannot read " + path);
  }

  Cursor cursor(image.data(), image.size());
  char magic[sizeof(kMagic)] = {};
  cursor.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    fail(CheckpointFault::kBadMagic, path + " is not an lrt.ckpt file");
  }
  const std::uint32_t version = cursor.u32("version");
  if (version != kVersion) {
    std::ostringstream os;
    os << path << " is lrt.ckpt version " << version << ", this build reads "
       << kVersion;
    fail(CheckpointFault::kBadVersion, os.str());
  }
  const std::uint32_t nsect = cursor.u32("section count");
  for (std::uint32_t s = 0; s < nsect; ++s) {
    const std::uint32_t name_len = cursor.u32("section name length");
    std::string name(name_len, '\0');
    cursor.read(name.data(), name_len, "section name");
    const std::uint64_t size = cursor.u64("section size");
    const std::uint32_t stored_crc = cursor.u32("section crc");
    std::vector<unsigned char> payload(static_cast<std::size_t>(size));
    cursor.read(payload.data(), payload.size(), name.c_str());
    const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
    if (actual_crc != stored_crc) {
      std::ostringstream os;
      os << path << " section '" << name << "': crc " << std::hex
         << actual_crc << " != stored " << stored_crc;
      fail(CheckpointFault::kBadCrc, os.str());
    }
    sections_[name] = std::move(payload);
  }
}

bool CheckpointReader::has(const std::string& name) const {
  return sections_.count(name) != 0;
}

const std::vector<unsigned char>& CheckpointReader::section(
    const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end()) {
    fail(CheckpointFault::kMissingSection, "no section '" + name + "'");
  }
  return it->second;
}

la::RealMatrix CheckpointReader::matrix(const std::string& name) const {
  const std::vector<unsigned char>& s = section(name);
  if (s.size() < sizeof(MatrixHeader)) {
    throw_shape(name, sizeof(MatrixHeader), s.size());
  }
  MatrixHeader header;
  std::memcpy(&header, s.data(), sizeof(header));
  if (header.rows < 0 || header.cols < 0) {
    throw_shape(name, sizeof(MatrixHeader), s.size());
  }
  const std::size_t expect =
      sizeof(header) + static_cast<std::size_t>(header.rows) *
                           static_cast<std::size_t>(header.cols) *
                           sizeof(Real);
  if (s.size() != expect) throw_shape(name, expect, s.size());
  la::RealMatrix m(static_cast<Index>(header.rows),
                   static_cast<Index>(header.cols));
  if (!m.empty()) {
    std::memcpy(m.data(), s.data() + sizeof(header),
                s.size() - sizeof(header));
  }
  return m;
}

void CheckpointReader::throw_shape(const std::string& name, std::size_t unit,
                                   std::size_t actual) {
  std::ostringstream os;
  os << "section '" << name << "' has " << actual
     << " bytes, inconsistent with element/expected size " << unit;
  fail(CheckpointFault::kBadShape, os.str());
}

bool checkpoint_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

// ----- solver adapters -------------------------------------------------------

void save_lobpcg(const la::LobpcgCheckpoint& state, const std::string& path) {
  CheckpointWriter writer;
  writer.add("kind", "lobpcg", 6);
  LobpcgMeta meta;
  meta.iteration = state.iteration;
  writer.add_pod("meta", meta);
  writer.add_matrix("x", state.x.view());
  writer.add_matrix("hx", state.hx.view());
  writer.add_matrix("p", state.p.view());
  writer.add_matrix("hp", state.hp.view());
  writer.add_array("eigenvalues", state.eigenvalues);
  writer.add_array("previous_values", state.previous_values);
  writer.add_array("residual_norms", state.residual_norms);
  writer.write(path);
}

la::LobpcgCheckpoint load_lobpcg(const std::string& path) {
  const CheckpointReader reader(path);
  const std::vector<unsigned char>& kind = reader.section("kind");
  if (std::string(kind.begin(), kind.end()) != "lobpcg") {
    fail(CheckpointFault::kBadShape, path + " is not a lobpcg checkpoint");
  }
  la::LobpcgCheckpoint state;
  const auto meta = reader.pod<LobpcgMeta>("meta");
  state.iteration = static_cast<Index>(meta.iteration);
  state.x = reader.matrix("x");
  state.hx = reader.matrix("hx");
  state.p = reader.matrix("p");
  state.hp = reader.matrix("hp");
  state.eigenvalues = reader.array<Real>("eigenvalues");
  state.previous_values = reader.array<Real>("previous_values");
  state.residual_norms = reader.array<Real>("residual_norms");
  return state;
}

void save_kmeans(const KMeansState& state, const std::string& path) {
  CheckpointWriter writer;
  writer.add("kind", "kmeans", 6);
  KMeansMeta meta;
  meta.iteration = state.iteration;
  meta.objective = state.objective;
  meta.has_rng = state.has_rng ? 1 : 0;
  writer.add_pod("meta", meta);
  writer.add_array("centroids", state.centroids);
  if (state.has_rng) writer.add_pod("rng", state.rng);
  writer.write(path);
}

KMeansState load_kmeans(const std::string& path) {
  const CheckpointReader reader(path);
  const std::vector<unsigned char>& kind = reader.section("kind");
  if (std::string(kind.begin(), kind.end()) != "kmeans") {
    fail(CheckpointFault::kBadShape, path + " is not a kmeans checkpoint");
  }
  KMeansState state;
  const auto meta = reader.pod<KMeansMeta>("meta");
  state.iteration = static_cast<Index>(meta.iteration);
  state.objective = meta.objective;
  state.has_rng = meta.has_rng != 0;
  state.centroids = reader.array<grid::Vec3>("centroids");
  if (state.has_rng) state.rng = reader.pod<RngState>("rng");
  return state;
}

}  // namespace lrt::ft
