// Bounded retry with deterministic exponential backoff.
//
// Retry::run(body) re-executes `body` while it throws ft::TransientError,
// up to a fixed attempt budget, backing off exponentially between
// attempts with jitter drawn from the FaultPlan's per-rank PRNG stream —
// so a retry schedule is as reproducible as the faults that caused it.
// Any other exception (RankCrashError, verifier findings, logic errors)
// passes straight through: transient vs fatal classification lives in the
// error type, not here. See docs/RESILIENCE.md.
#pragma once

#include "ft/fault.hpp"

namespace lrt::obs {
class Counter;
}  // namespace lrt::obs

namespace lrt::ft {

struct RetryOptions {
  int max_attempts = 6;
  long long base_backoff_us = 1;  ///< doubled per attempt
  long long max_backoff_us = 1000;
};

/// Counter pair a retry site reports to: `attempts` counts re-executions
/// after a transient failure, `exhausted` counts budgets that ran out
/// (the final TransientError then escapes as fatal).
struct RetrySite {
  obs::Counter* attempts = nullptr;
  obs::Counter* exhausted = nullptr;
};

/// The default site (ft.retry.* counters) for callers without their own.
RetrySite default_retry_site();

class Retry {
 public:
  /// `plan` supplies backoff jitter for world rank `rank`; null means no
  /// jitter (pure exponential), which keeps Retry usable outside fault
  /// runs.
  Retry(const RetryOptions& options, RetrySite site, FaultPlan* plan,
        int rank)
      : options_(options), site_(site), plan_(plan), rank_(rank) {}

  template <typename F>
  auto run(F&& body) -> decltype(body()) {
    for (int attempt = 0;; ++attempt) {
      try {
        return body();
      } catch (const TransientError&) {
        if (attempt + 1 >= options_.max_attempts) {
          if (site_.exhausted != nullptr) count_exhausted();
          throw;
        }
        if (site_.attempts != nullptr) count_attempt();
        backoff(attempt);
      }
    }
  }

 private:
  void count_attempt();
  void count_exhausted();
  void backoff(int attempt);

  RetryOptions options_;
  RetrySite site_;
  FaultPlan* plan_;
  int rank_;
};

}  // namespace lrt::ft
