#include "ft/fault.hpp"

#include <cstdlib>
#include <sstream>

#include "common/timer.hpp"
#include "obs/counters.hpp"

namespace lrt::ft {
namespace {

// Distinct per-rank streams: decorrelate the SplitMix64-seeded states by
// mixing the rank into the seed with the golden-ratio increment.
std::uint64_t rank_seed(std::uint64_t seed, int rank) {
  return seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(rank) + 1));
}

double parse_prob(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  LRT_CHECK(pos == value.size() && p >= 0.0 && p <= 1.0,
            "LRT_FAULT: " << key << "=" << value
                          << " is not a probability in [0,1]");
  return p;
}

long long parse_ll(const std::string& key, const std::string& value,
                   long long min_value) {
  std::size_t pos = 0;
  long long n = 0;
  try {
    n = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  LRT_CHECK(pos == value.size() && n >= min_value,
            "LRT_FAULT: " << key << "=" << value << " must be an integer >= "
                          << min_value);
  return n;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    // Tolerate stray whitespace around items ("fail=0.01, delay=0.1").
    const std::size_t begin = item.find_first_not_of(" \t");
    const std::size_t end = item.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    item = item.substr(begin, end - begin + 1);
    const std::size_t eq = item.find('=');
    LRT_CHECK(eq != std::string::npos && eq > 0,
              "LRT_FAULT: expected key=value, got '" << item << "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_ll(key, value, 0));
    } else if (key == "fail") {
      spec.send_fail_prob = parse_prob(key, value);
    } else if (key == "delay") {
      spec.delay_prob = parse_prob(key, value);
    } else if (key == "delay_us") {
      spec.delay_us = parse_ll(key, value, 0);
    } else if (key == "crash") {
      const std::size_t at = value.find('@');
      LRT_CHECK(at != std::string::npos,
                "LRT_FAULT: crash wants rank@query, got '" << value << "'");
      spec.crash_rank =
          static_cast<int>(parse_ll(key, value.substr(0, at), 0));
      spec.crash_at = parse_ll(key, value.substr(at + 1), 1);
    } else if (key == "retries") {
      spec.max_attempts = static_cast<int>(parse_ll(key, value, 1));
    } else if (key == "backoff_us") {
      spec.backoff_us = parse_ll(key, value, 0);
    } else {
      throw Error("LRT_FAULT: unknown key '" + key + "'");
    }
  }
  return spec;
}

FaultPlan::FaultPlan(const FaultSpec& spec, int nranks)
    : spec_(spec),
      injected_fails_(&obs::counter("ft.inject.send_fail")),
      injected_delays_(&obs::counter("ft.inject.delay")),
      injected_crashes_(&obs::counter("ft.inject.crash")),
      site_queries_(&obs::counter("ft.inject.queries")) {
  LRT_CHECK(nranks >= 1, "FaultPlan wants at least one rank");
  ranks_.resize(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks_[static_cast<std::size_t>(r)].rng = Rng(rank_seed(spec.seed, r));
  }
}

std::unique_ptr<FaultPlan> FaultPlan::from_env(int nranks) {
  const char* text = std::getenv("LRT_FAULT");
  if (text == nullptr || *text == '\0') return nullptr;
  return std::make_unique<FaultPlan>(FaultSpec::parse(text), nranks);
}

FaultPlan::RankStream& FaultPlan::stream(int rank) {
  LRT_ASSERT(rank >= 0 && rank < static_cast<int>(ranks_.size()),
             "fault plan: bad rank " << rank);
  return ranks_[static_cast<std::size_t>(rank)];
}

void FaultPlan::maybe_delay_or_crash(RankStream& s, int rank,
                                     const char* site) {
  ++s.queries;
  site_queries_->add(1);
  if (rank == spec_.crash_rank && s.queries == spec_.crash_at) {
    injected_crashes_->add(1);
    std::ostringstream os;
    os << "injected crash of rank " << rank << " at " << site << " query #"
       << s.queries;
    throw RankCrashError(os.str());
  }
  if (spec_.delay_prob > 0.0 && s.rng.uniform() < spec_.delay_prob) {
    injected_delays_->add(1);
    spin_wait_us(spec_.delay_us);
  }
}

void FaultPlan::on_send(int rank) {
  RankStream& s = stream(rank);
  maybe_delay_or_crash(s, rank, "send");
  if (spec_.send_fail_prob > 0.0 && s.rng.uniform() < spec_.send_fail_prob) {
    injected_fails_->add(1);
    std::ostringstream os;
    os << "injected transient send failure on rank " << rank << " (query #"
       << s.queries << ")";
    throw TransientError(os.str());
  }
}

void FaultPlan::on_collective(int rank) {
  maybe_delay_or_crash(stream(rank), rank, "collective");
}

long long FaultPlan::jitter_us(int rank, long long max_us) {
  if (max_us <= 0) return 0;
  return static_cast<long long>(stream(rank).rng.uniform_index(
      static_cast<std::uint64_t>(max_us) + 1));
}

long long FaultPlan::queries(int rank) const {
  return ranks_[static_cast<std::size_t>(rank)].queries;
}

void spin_wait_us(long long us) {
  if (us <= 0) return;
  Timer timer;
  const double limit = static_cast<double>(us) * 1e-6;
  while (timer.seconds() < limit) {
    // Busy wait; see the declaration for why this is not a sleep.
  }
}

}  // namespace lrt::ft
