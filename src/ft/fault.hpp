// Deterministic fault injection for the parallel runtime.
//
// A FaultPlan decides, at every injection site the runtime queries
// (point-to-point sends and collective entries in par::Comm), whether to
// inject a message delay, a transient send failure (ft::TransientError,
// healed by ft::Retry), or a single-rank "crash" (ft::RankCrashError,
// which propagates through the runtime's poison-all abort path exactly
// like a real rank loss). Every decision is drawn from a per-rank
// xoshiro256++ stream seeded from (spec seed, world rank), and each rank's
// stream is touched only by that rank's thread — so a given seed + spec
// reproduces the exact same injection sites and retry schedules run after
// run, independent of thread interleaving. See docs/RESILIENCE.md.
//
// Plans come from the LRT_FAULT environment variable ("seed=7,fail=0.01")
// or an explicit FaultSpec passed to par::run; no plan means every hook
// compiles down to one pointer test on the Comm hot paths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"

namespace lrt::obs {
class Counter;
}  // namespace lrt::obs

namespace lrt::ft {

/// A communication attempt that failed but is worth retrying (injected
/// send failures surface as this; ft::Retry heals them locally).
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A rank was taken down by the plan. Never retried: it propagates out of
/// par::run through the poison-all abort path, like a real rank loss.
class RankCrashError : public Error {
 public:
  explicit RankCrashError(const std::string& what) : Error(what) {}
};

/// Parsed LRT_FAULT specification. Grammar: comma-separated key=value
/// pairs (docs/RESILIENCE.md):
///
///   seed=N        PRNG seed (default 1)
///   fail=P        per-send transient-failure probability in [0,1]
///   delay=P       per-site delay probability in [0,1]
///   delay_us=N    injected delay length in microseconds (default 20)
///   crash=R@N     rank R crashes at its N-th injection-site query
///   retries=N     Comm retry budget for transient sends (default 6)
///   backoff_us=N  base retry backoff, doubled per attempt (default 1)
struct FaultSpec {
  std::uint64_t seed = 1;
  double send_fail_prob = 0.0;
  double delay_prob = 0.0;
  long long delay_us = 20;
  int crash_rank = -1;
  long long crash_at = -1;
  int max_attempts = 6;
  long long backoff_us = 1;

  /// Parses the grammar above; throws lrt::Error on malformed input.
  static FaultSpec parse(const std::string& text);
};

/// One parallel run's injection schedule. Owned by par::Runtime; Comm
/// caches a raw pointer (null = injection disabled).
class FaultPlan {
 public:
  FaultPlan(const FaultSpec& spec, int nranks);

  /// Builds a plan from LRT_FAULT, or null when the variable is unset or
  /// empty (the common production case).
  static std::unique_ptr<FaultPlan> from_env(int nranks);

  const FaultSpec& spec() const { return spec_; }

  /// Injection hook for a p2p send by world rank `rank`. May spin-delay,
  /// throw TransientError, or throw RankCrashError. Each failed attempt
  /// re-queries the hook, so retry schedules advance the rank's stream
  /// deterministically.
  void on_send(int rank);

  /// Injection hook at collective entry: delay and crash only. Transient
  /// failures are never injected here — a collective has already posted
  /// its verifier signature on entry, so replaying it locally would
  /// diverge the cross-rank sequence numbers; sends *inside* collectives
  /// remain fair game for on_send.
  void on_collective(int rank);

  /// Deterministic backoff jitter in [0, max_us], drawn from `rank`'s
  /// stream (same stream as the injection decisions, so the whole retry
  /// schedule replays from the seed).
  long long jitter_us(int rank, long long max_us);

  /// Injection-site queries rank has issued so far (crash=R@N counts
  /// these).
  long long queries(int rank) const;

 private:
  struct RankStream {
    Rng rng;
    long long queries = 0;
  };

  RankStream& stream(int rank);
  void maybe_delay_or_crash(RankStream& s, int rank, const char* site);

  FaultSpec spec_;
  std::vector<RankStream> ranks_;
  obs::Counter* injected_fails_;
  obs::Counter* injected_delays_;
  obs::Counter* injected_crashes_;
  obs::Counter* site_queries_;
};

/// Busy-waits for `us` microseconds on the monotonic clock. Used for
/// injected delays and retry backoff: the analyzer bans sleep_for in
/// library code (tools/lrt-analyze banned-sleep), and at these durations a
/// scheduler round-trip would dwarf the wait anyway.
void spin_wait_us(long long us);

}  // namespace lrt::ft
