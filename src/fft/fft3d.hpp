// Three-dimensional complex FFT on a row-major (n0, n1, n2) grid.
//
// The plane-wave code transforms orbital pair products between real space
// and reciprocal space on the simulation grid; Fft3D caches one 1-D plan
// per axis and reuses gather buffers. Element (i0, i1, i2) lives at flat
// index (i0 * n1 + i1) * n2 + i2.
#pragma once

#include <array>
#include <vector>

#include "fft/fft1d.hpp"

namespace lrt::fft {

class Fft3D {
 public:
  Fft3D(Index n0, Index n1, Index n2);

  Index size() const { return n_[0] * n_[1] * n_[2]; }
  std::array<Index, 3> shape() const { return n_; }

  /// In-place forward transform (real space -> reciprocal, unnormalized).
  void forward(Complex* x) const;

  /// In-place inverse transform (normalized by 1/(n0*n1*n2)).
  void inverse(Complex* x) const;

  /// Real-array conveniences: forward copies `real_in` into the complex
  /// work array; inverse_real discards the (numerically zero) imaginary
  /// part of the result.
  void forward(const Real* real_in, Complex* out) const;
  void inverse_real(const Complex* in, Real* real_out) const;

 private:
  void transform(Complex* x, bool inverse) const;

  std::array<Index, 3> n_;
  Fft1D plan0_, plan1_, plan2_;
};

}  // namespace lrt::fft
