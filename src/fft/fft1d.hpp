// One-dimensional complex FFT.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// arbitrary lengths fall back to Bluestein's chirp-z algorithm built on a
// padded radix-2 transform. This mirrors what FFTW provides to the paper's
// code: the plane-wave grids are rarely powers of two (104, 166, ...).
//
// Normalization: forward is unnormalized, inverse divides by n, so
// inverse(forward(x)) == x.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/config.hpp"

namespace lrt::fft {

using Complex = std::complex<Real>;

/// Reusable transform plan for a fixed length (twiddles and, for
/// non-power-of-two lengths, the Bluestein chirp spectra are precomputed).
class Fft1D {
 public:
  explicit Fft1D(Index n);
  ~Fft1D();

  Fft1D(Fft1D&&) noexcept;
  Fft1D& operator=(Fft1D&&) noexcept;
  Fft1D(const Fft1D&) = delete;
  Fft1D& operator=(const Fft1D&) = delete;

  Index size() const;

  /// In-place forward transform of n contiguous values.
  void forward(Complex* x) const;

  /// In-place inverse transform (normalized by 1/n).
  void inverse(Complex* x) const;

  /// In-place forward transform of `count` lines sharing this plan.
  /// Line t starts at base + t*dist; element j of a line is at offset
  /// j*stride. Lines must not overlap. The batch is gathered into
  /// cache-blocked tile-transposed contiguous buffers so the strided
  /// access cost is paid once per element, and the butterflies run
  /// across lines with unit stride (SIMD) — results are bitwise
  /// identical to calling forward() per line. Threads over tiles with
  /// OpenMP unless already inside a parallel region.
  void forward_many(Complex* base, Index count, Index stride,
                    Index dist) const;

  /// Batched inverse transform; same layout contract as forward_many,
  /// bitwise identical to calling inverse() per line.
  void inverse_many(Complex* base, Index count, Index stride,
                    Index dist) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;

  void transform_many(Complex* base, Index count, Index stride, Index dist,
                      bool inverse) const;
};

/// One-shot convenience transforms.
void fft_forward(Complex* x, Index n);
void fft_inverse(Complex* x, Index n);

/// True if n is a power of two (n >= 1).
bool is_power_of_two(Index n);

/// Smallest power of two >= n.
Index next_power_of_two(Index n);

}  // namespace lrt::fft
