// One-dimensional complex FFT.
//
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey transform;
// arbitrary lengths fall back to Bluestein's chirp-z algorithm built on a
// padded radix-2 transform. This mirrors what FFTW provides to the paper's
// code: the plane-wave grids are rarely powers of two (104, 166, ...).
//
// Normalization: forward is unnormalized, inverse divides by n, so
// inverse(forward(x)) == x.
#pragma once

#include <complex>
#include <memory>
#include <vector>

#include "common/config.hpp"

namespace lrt::fft {

using Complex = std::complex<Real>;

/// Reusable transform plan for a fixed length (twiddles and, for
/// non-power-of-two lengths, the Bluestein chirp spectra are precomputed).
class Fft1D {
 public:
  explicit Fft1D(Index n);
  ~Fft1D();

  Fft1D(Fft1D&&) noexcept;
  Fft1D& operator=(Fft1D&&) noexcept;
  Fft1D(const Fft1D&) = delete;
  Fft1D& operator=(const Fft1D&) = delete;

  Index size() const;

  /// In-place forward transform of n contiguous values.
  void forward(Complex* x) const;

  /// In-place inverse transform (normalized by 1/n).
  void inverse(Complex* x) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience transforms.
void fft_forward(Complex* x, Index n);
void fft_inverse(Complex* x, Index n);

/// True if n is a power of two (n >= 1).
bool is_power_of_two(Index n);

/// Smallest power of two >= n.
Index next_power_of_two(Index n);

}  // namespace lrt::fft
