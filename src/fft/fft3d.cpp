#include "fft/fft3d.hpp"

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace lrt::fft {

Fft3D::Fft3D(Index n0, Index n1, Index n2)
    : n_{n0, n1, n2}, plan0_(n0), plan1_(n1), plan2_(n2) {
  LRT_CHECK(n0 >= 1 && n1 >= 1 && n2 >= 1,
            "bad 3-D FFT shape " << n0 << "x" << n1 << "x" << n2);
}

void Fft3D::transform(Complex* x, bool inverse) const {
  const Index n0 = n_[0], n1 = n_[1], n2 = n_[2];
  const obs::Span span("fft.fft3d");
  static obs::Counter& calls = obs::counter("fft.fft3d.calls");
  static obs::Counter& points = obs::counter("fft.fft3d.points");
  calls.add(1);
  points.add(static_cast<long long>(n0) * n1 * n2);

  // Axis 2: contiguous lines.
  for (Index i0 = 0; i0 < n0; ++i0) {
    for (Index i1 = 0; i1 < n1; ++i1) {
      Complex* line = x + (i0 * n1 + i1) * n2;
      if (inverse) {
        plan2_.inverse(line);
      } else {
        plan2_.forward(line);
      }
    }
  }

  // Axis 1: stride n2 within each i0 slab.
  std::vector<Complex> buffer(static_cast<std::size_t>(std::max(n0, n1)));
  for (Index i0 = 0; i0 < n0; ++i0) {
    Complex* slab = x + i0 * n1 * n2;
    for (Index i2 = 0; i2 < n2; ++i2) {
      for (Index i1 = 0; i1 < n1; ++i1) {
        buffer[static_cast<std::size_t>(i1)] = slab[i1 * n2 + i2];
      }
      if (inverse) {
        plan1_.inverse(buffer.data());
      } else {
        plan1_.forward(buffer.data());
      }
      for (Index i1 = 0; i1 < n1; ++i1) {
        slab[i1 * n2 + i2] = buffer[static_cast<std::size_t>(i1)];
      }
    }
  }

  // Axis 0: stride n1*n2.
  const Index stride0 = n1 * n2;
  for (Index rem = 0; rem < stride0; ++rem) {
    for (Index i0 = 0; i0 < n0; ++i0) {
      buffer[static_cast<std::size_t>(i0)] = x[i0 * stride0 + rem];
    }
    if (inverse) {
      plan0_.inverse(buffer.data());
    } else {
      plan0_.forward(buffer.data());
    }
    for (Index i0 = 0; i0 < n0; ++i0) {
      x[i0 * stride0 + rem] = buffer[static_cast<std::size_t>(i0)];
    }
  }
}

void Fft3D::forward(Complex* x) const { transform(x, /*inverse=*/false); }

void Fft3D::inverse(Complex* x) const { transform(x, /*inverse=*/true); }

void Fft3D::forward(const Real* real_in, Complex* out) const {
  const Index n = size();
  for (Index i = 0; i < n; ++i) out[i] = Complex(real_in[i], Real{0});
  forward(out);
}

void Fft3D::inverse_real(const Complex* in, Real* real_out) const {
  const Index n = size();
  std::vector<Complex> work(in, in + n);
  inverse(work.data());
  for (Index i = 0; i < n; ++i) real_out[i] = work[static_cast<std::size_t>(i)].real();
}

}  // namespace lrt::fft
