#include "fft/fft3d.hpp"

#include "common/error.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace lrt::fft {

Fft3D::Fft3D(Index n0, Index n1, Index n2)
    : n_{n0, n1, n2}, plan0_(n0), plan1_(n1), plan2_(n2) {
  LRT_CHECK(n0 >= 1 && n1 >= 1 && n2 >= 1,
            "bad 3-D FFT shape " << n0 << "x" << n1 << "x" << n2);
}

// Each axis pass is one batched call into the shared per-axis plan
// (docs/PERFORMANCE.md §2): the batched API tiles the strided gather
// into contiguous transposed buffers and runs butterflies across lines,
// replacing the old per-element copy loops. Axis 1 is phrased per-slab
// so an OpenMP team can take whole slabs when there are enough of them;
// each slab is itself a batched (count=n2, stride=n2, dist=1) call.
void Fft3D::transform(Complex* x, bool inverse) const {
  const Index n0 = n_[0], n1 = n_[1], n2 = n_[2];
  const obs::Span span("fft.fft3d");
  static obs::Counter& calls = obs::counter("fft.fft3d.calls");
  static obs::Counter& points = obs::counter("fft.fft3d.points");
  calls.add(1);
  points.add(static_cast<long long>(n0) * n1 * n2);

  {
    // Axis 2: contiguous lines, one batch over the whole grid.
    const obs::Span axis("fft.fft3d.axis2");
    if (inverse) {
      plan2_.inverse_many(x, n0 * n1, /*stride=*/1, /*dist=*/n2);
    } else {
      plan2_.forward_many(x, n0 * n1, /*stride=*/1, /*dist=*/n2);
    }
  }

  {
    // Axis 1: within each i0 slab, n2 lines of stride n2 starting at
    // consecutive offsets.
    const obs::Span axis("fft.fft3d.axis1");
    [[maybe_unused]] const bool par =
#ifdef _OPENMP
        omp_in_parallel() == 0 && n0 > 1;
#else
        false;
#endif
#pragma omp parallel for schedule(static) if (par)
    for (Index i0 = 0; i0 < n0; ++i0) {
      Complex* slab = x + i0 * n1 * n2;
      if (inverse) {
        plan1_.inverse_many(slab, n2, /*stride=*/n2, /*dist=*/1);
      } else {
        plan1_.forward_many(slab, n2, /*stride=*/n2, /*dist=*/1);
      }
    }
  }

  {
    // Axis 0: stride n1*n2, one batch of n1*n2 lines at unit distance.
    const obs::Span axis("fft.fft3d.axis0");
    const Index stride0 = n1 * n2;
    if (inverse) {
      plan0_.inverse_many(x, stride0, /*stride=*/stride0, /*dist=*/1);
    } else {
      plan0_.forward_many(x, stride0, /*stride=*/stride0, /*dist=*/1);
    }
  }
}

void Fft3D::forward(Complex* x) const { transform(x, /*inverse=*/false); }

void Fft3D::inverse(Complex* x) const { transform(x, /*inverse=*/true); }

void Fft3D::forward(const Real* real_in, Complex* out) const {
  const Index n = size();
  for (Index i = 0; i < n; ++i) out[i] = Complex(real_in[i], Real{0});
  forward(out);
}

void Fft3D::inverse_real(const Complex* in, Real* real_out) const {
  const Index n = size();
  std::vector<Complex> work(in, in + n);
  inverse(work.data());
  for (Index i = 0; i < n; ++i) real_out[i] = work[static_cast<std::size_t>(i)].real();
}

}  // namespace lrt::fft
