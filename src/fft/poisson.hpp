// Reciprocal-space Poisson (Hartree) solver.
//
// Given a charge density n(r) on the periodic grid, the Hartree potential
// solves ∇² v_H = -4π n, i.e. v_H(G) = 4π n(G) / |G|² with the G = 0
// component set to zero (charge-neutralizing background). The |G|² table
// in FFT index layout is supplied by the grid module, keeping this module
// independent of lattice details.
#pragma once

#include <vector>

#include "fft/fft3d.hpp"

namespace lrt::fft {

class PoissonSolver {
 public:
  /// `g2` holds |G|² for every grid point in FFT layout; g2[0] must be the
  /// G = 0 entry (it is ignored). Keeps a reference-free copy.
  PoissonSolver(Fft3D fft, std::vector<Real> g2);

  Index size() const { return fft_.size(); }
  const Fft3D& fft() const { return fft_; }
  const std::vector<Real>& g2() const { return g2_; }

  /// Computes v_H from density in place on real arrays.
  void solve(const Real* density, Real* potential) const;

  /// Applies the Hartree kernel to an already-transformed density:
  /// rho_g[i] *= 4π/g2[i] (G = 0 zeroed).
  void apply_kernel_g(Complex* rho_g) const;

  /// Hartree energy  E_H = ½ ∫ n v_H  given both arrays and the volume
  /// element dv = Ω/Nr.
  Real energy(const Real* density, const Real* potential, Real dv) const;

 private:
  Fft3D fft_;
  std::vector<Real> g2_;
};

}  // namespace lrt::fft
