#include "fft/poisson.hpp"

#include "common/error.hpp"

namespace lrt::fft {

PoissonSolver::PoissonSolver(Fft3D fft, std::vector<Real> g2)
    : fft_(std::move(fft)), g2_(std::move(g2)) {
  LRT_CHECK(static_cast<Index>(g2_.size()) == fft_.size(),
            "g2 table size " << g2_.size() << " != grid size " << fft_.size());
}

void PoissonSolver::apply_kernel_g(Complex* rho_g) const {
  const Index n = fft_.size();
  rho_g[0] = Complex{0, 0};
  for (Index i = 1; i < n; ++i) {
    const Real g2 = g2_[static_cast<std::size_t>(i)];
    if (g2 > Real{0}) {
      rho_g[i] *= constants::kFourPi / g2;
    } else {
      rho_g[i] = Complex{0, 0};
    }
  }
}

void PoissonSolver::solve(const Real* density, Real* potential) const {
  const Index n = fft_.size();
  std::vector<Complex> work(static_cast<std::size_t>(n));
  fft_.forward(density, work.data());
  apply_kernel_g(work.data());
  fft_.inverse_real(work.data(), potential);
  (void)n;
}

Real PoissonSolver::energy(const Real* density, const Real* potential,
                           Real dv) const {
  const Index n = fft_.size();
  Real sum = 0.0;
  for (Index i = 0; i < n; ++i) sum += density[i] * potential[i];
  return Real{0.5} * sum * dv;
}

}  // namespace lrt::fft
