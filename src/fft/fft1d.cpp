#include "fft/fft1d.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lrt::fft {
namespace {

using constants::kPi;

/// In-place iterative radix-2 transform; sign = -1 forward, +1 backward
/// (unnormalized). `twiddle` holds exp(sign * 2πi k / n) for k < n/2.
void radix2(Complex* x, Index n, const std::vector<Complex>& twiddle) {
  // Bit-reversal permutation.
  for (Index i = 1, j = 0; i < n; ++i) {
    Index bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (Index len = 2; len <= n; len <<= 1) {
    const Index step = n / len;
    const Index half = len / 2;
    for (Index i = 0; i < n; i += len) {
      for (Index k = 0; k < half; ++k) {
        const Complex w = twiddle[static_cast<std::size_t>(k * step)];
        const Complex u = x[i + k];
        const Complex v = x[i + k + half] * w;
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
  }
}

std::vector<Complex> make_twiddles(Index n, int sign) {
  std::vector<Complex> tw(static_cast<std::size_t>(n / 2));
  for (Index k = 0; k < n / 2; ++k) {
    const Real angle = sign * 2.0 * kPi * static_cast<Real>(k) /
                       static_cast<Real>(n);
    tw[static_cast<std::size_t>(k)] = Complex(std::cos(angle), std::sin(angle));
  }
  return tw;
}

}  // namespace

bool is_power_of_two(Index n) { return n >= 1 && (n & (n - 1)) == 0; }

Index next_power_of_two(Index n) {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct Fft1D::Impl {
  Index n = 0;

  // Power-of-two path.
  std::vector<Complex> tw_fwd;
  std::vector<Complex> tw_bwd;

  // Bluestein path (empty when n is a power of two).
  Index m = 0;                      // padded power-of-two length >= 2n-1
  std::vector<Complex> chirp;       // w_k = exp(-i π k² / n)
  std::vector<Complex> b_spectrum;  // FFT of the chirp kernel
  std::vector<Complex> m_tw_fwd;
  std::vector<Complex> m_tw_bwd;

  void forward_pow2(Complex* x) const { radix2(x, n, tw_fwd); }

  void backward_pow2(Complex* x) const { radix2(x, n, tw_bwd); }

  /// Bluestein forward transform: X_k = w_k * IFFT_m(FFT_m(x·w) · B)_k.
  void forward_bluestein(Complex* x) const {
    std::vector<Complex> a(static_cast<std::size_t>(m), Complex{0, 0});
    for (Index k = 0; k < n; ++k) {
      a[static_cast<std::size_t>(k)] = x[k] * chirp[static_cast<std::size_t>(k)];
    }
    radix2(a.data(), m, m_tw_fwd);
    for (Index k = 0; k < m; ++k) {
      a[static_cast<std::size_t>(k)] *= b_spectrum[static_cast<std::size_t>(k)];
    }
    radix2(a.data(), m, m_tw_bwd);
    const Real inv_m = Real{1} / static_cast<Real>(m);
    for (Index k = 0; k < n; ++k) {
      x[k] = a[static_cast<std::size_t>(k)] * chirp[static_cast<std::size_t>(k)] *
             inv_m;
    }
  }
};

Fft1D::Fft1D(Index n) : impl_(std::make_unique<Impl>()) {
  LRT_CHECK(n >= 1, "FFT length must be >= 1, got " << n);
  impl_->n = n;
  if (is_power_of_two(n)) {
    impl_->tw_fwd = make_twiddles(n, -1);
    impl_->tw_bwd = make_twiddles(n, +1);
    return;
  }
  // Bluestein setup.
  const Index m = next_power_of_two(2 * n - 1);
  impl_->m = m;
  impl_->m_tw_fwd = make_twiddles(m, -1);
  impl_->m_tw_bwd = make_twiddles(m, +1);
  impl_->chirp.resize(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    // Reduce k² mod 2n before the trig call to keep the argument small for
    // large n (k² overflows Real precision around n ~ 1e8 otherwise).
    const long long k2 = (static_cast<long long>(k) * k) % (2 * n);
    const Real angle = -kPi * static_cast<Real>(k2) / static_cast<Real>(n);
    impl_->chirp[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> b(static_cast<std::size_t>(m), Complex{0, 0});
  for (Index k = 0; k < n; ++k) {
    const Complex value = std::conj(impl_->chirp[static_cast<std::size_t>(k)]);
    b[static_cast<std::size_t>(k)] = value;
    if (k > 0) b[static_cast<std::size_t>(m - k)] = value;
  }
  radix2(b.data(), m, impl_->m_tw_fwd);
  impl_->b_spectrum = std::move(b);
}

Fft1D::~Fft1D() = default;
Fft1D::Fft1D(Fft1D&&) noexcept = default;
Fft1D& Fft1D::operator=(Fft1D&&) noexcept = default;

Index Fft1D::size() const { return impl_->n; }

void Fft1D::forward(Complex* x) const {
  if (impl_->m == 0) {
    impl_->forward_pow2(x);
  } else {
    impl_->forward_bluestein(x);
  }
}

void Fft1D::inverse(Complex* x) const {
  const Index n = impl_->n;
  if (impl_->m == 0) {
    impl_->backward_pow2(x);
    const Real inv = Real{1} / static_cast<Real>(n);
    for (Index k = 0; k < n; ++k) x[k] *= inv;
    return;
  }
  // Arbitrary n: inverse via conjugation, IFFT(x) = conj(FFT(conj(x)))/n.
  for (Index k = 0; k < n; ++k) x[k] = std::conj(x[k]);
  impl_->forward_bluestein(x);
  const Real inv = Real{1} / static_cast<Real>(n);
  for (Index k = 0; k < n; ++k) x[k] = std::conj(x[k]) * inv;
}

void fft_forward(Complex* x, Index n) { Fft1D(n).forward(x); }

void fft_inverse(Complex* x, Index n) { Fft1D(n).inverse(x); }

}  // namespace lrt::fft
