#include "fft/fft1d.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/counters.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace lrt::fft {
namespace {

using constants::kPi;

bool in_parallel() {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// In-place iterative radix-2 transform; sign = -1 forward, +1 backward
/// (unnormalized). `twiddle` holds exp(sign * 2πi k / n) for k < n/2.
void radix2(Complex* x, Index n, const std::vector<Complex>& twiddle) {
  // Bit-reversal permutation.
  for (Index i = 1, j = 0; i < n; ++i) {
    Index bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (Index len = 2; len <= n; len <<= 1) {
    const Index step = n / len;
    const Index half = len / 2;
    for (Index i = 0; i < n; i += len) {
      for (Index k = 0; k < half; ++k) {
        const Complex w = twiddle[static_cast<std::size_t>(k * step)];
        const Complex u = x[i + k];
        const Complex v = x[i + k + half] * w;
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batched transforms (docs/PERFORMANCE.md §2).
//
// A tile of nt lines lives split-complex and element-major: re[j*nt + t]
// is element j of line t. Every butterfly then applies the same twiddle
// to nt independent lines with unit-stride loads, so the t-loops
// vectorize and the per-line dependency chains overlap. Each line sees
// exactly the operations of the scalar radix2() in the same order, which
// keeps batched results bitwise identical to the per-line path (there is
// no FMA contraction at the baseline ISA, and the expression order below
// mirrors the std::complex operator* fast path).
// ---------------------------------------------------------------------------

void radix2_many(Real* re, Real* im, Index n, Index nt,
                 const std::vector<Complex>& twiddle) {
  // Bit-reversal permutation of whole element rows.
  for (Index i = 1, j = 0; i < n; ++i) {
    Index bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      Real* ri = re + i * nt;
      Real* rj = re + j * nt;
      Real* qi = im + i * nt;
      Real* qj = im + j * nt;
      for (Index t = 0; t < nt; ++t) std::swap(ri[t], rj[t]);
      for (Index t = 0; t < nt; ++t) std::swap(qi[t], qj[t]);
    }
  }
  for (Index len = 2; len <= n; len <<= 1) {
    const Index step = n / len;
    const Index half = len / 2;
    for (Index i = 0; i < n; i += len) {
      for (Index k = 0; k < half; ++k) {
        const Complex w = twiddle[static_cast<std::size_t>(k * step)];
        const Real wr = w.real();
        const Real wi = w.imag();
        Real* ur = re + (i + k) * nt;
        Real* ui = im + (i + k) * nt;
        Real* vr = re + (i + k + half) * nt;
        Real* vi = im + (i + k + half) * nt;
#pragma omp simd
        for (Index t = 0; t < nt; ++t) {
          const Real xr = vr[t] * wr - vi[t] * wi;
          const Real xi = vr[t] * wi + vi[t] * wr;
          const Real yr = ur[t];
          const Real yi = ui[t];
          ur[t] = yr + xr;
          ui[t] = yi + xi;
          vr[t] = yr - xr;
          vi[t] = yi - xi;
        }
      }
    }
  }
}

/// Multiplies every line element-wise by `scale` (inverse normalization).
void scale_many(Real* re, Real* im, Index n, Index nt, Real scale) {
  const Index total = n * nt;
#pragma omp simd
  for (Index i = 0; i < total; ++i) re[i] *= scale;
#pragma omp simd
  for (Index i = 0; i < total; ++i) im[i] *= scale;
}

/// Cache-blocked strided gather into the element-major split-complex
/// tile: re/im[j*nt + t] = src[t*dist + j*stride].
void gather_tile(const Complex* src, Index nt, Index n, Index stride,
                 Index dist, Real* re, Real* im) {
  constexpr Index kBlk = 16;
  for (Index j0 = 0; j0 < n; j0 += kBlk) {
    const Index j1 = std::min(j0 + kBlk, n);
    for (Index t0 = 0; t0 < nt; t0 += kBlk) {
      const Index t1 = std::min(t0 + kBlk, nt);
      for (Index j = j0; j < j1; ++j) {
        const Complex* s = src + j * stride;
        Real* rrow = re + j * nt;
        Real* irow = im + j * nt;
        for (Index t = t0; t < t1; ++t) {
          const Complex v = s[t * dist];
          rrow[t] = v.real();
          irow[t] = v.imag();
        }
      }
    }
  }
}

void scatter_tile(Complex* dst, Index nt, Index n, Index stride, Index dist,
                  const Real* re, const Real* im) {
  constexpr Index kBlk = 16;
  for (Index j0 = 0; j0 < n; j0 += kBlk) {
    const Index j1 = std::min(j0 + kBlk, n);
    for (Index t0 = 0; t0 < nt; t0 += kBlk) {
      const Index t1 = std::min(t0 + kBlk, nt);
      for (Index j = j0; j < j1; ++j) {
        Complex* d = dst + j * stride;
        const Real* rrow = re + j * nt;
        const Real* irow = im + j * nt;
        for (Index t = t0; t < t1; ++t) {
          d[t * dist] = Complex(rrow[t], irow[t]);
        }
      }
    }
  }
}

std::vector<Complex> make_twiddles(Index n, int sign) {
  std::vector<Complex> tw(static_cast<std::size_t>(n / 2));
  for (Index k = 0; k < n / 2; ++k) {
    const Real angle = sign * 2.0 * kPi * static_cast<Real>(k) /
                       static_cast<Real>(n);
    tw[static_cast<std::size_t>(k)] = Complex(std::cos(angle), std::sin(angle));
  }
  return tw;
}

}  // namespace

bool is_power_of_two(Index n) { return n >= 1 && (n & (n - 1)) == 0; }

Index next_power_of_two(Index n) {
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct Fft1D::Impl {
  Index n = 0;

  // Power-of-two path.
  std::vector<Complex> tw_fwd;
  std::vector<Complex> tw_bwd;

  // Bluestein path (empty when n is a power of two).
  Index m = 0;                      // padded power-of-two length >= 2n-1
  std::vector<Complex> chirp;       // w_k = exp(-i π k² / n)
  std::vector<Complex> b_spectrum;  // FFT of the chirp kernel
  std::vector<Complex> m_tw_fwd;
  std::vector<Complex> m_tw_bwd;

  void forward_pow2(Complex* x) const { radix2(x, n, tw_fwd); }

  void backward_pow2(Complex* x) const { radix2(x, n, tw_bwd); }

  /// Bluestein forward transform: X_k = w_k * IFFT_m(FFT_m(x·w) · B)_k.
  void forward_bluestein(Complex* x) const {
    std::vector<Complex> a(static_cast<std::size_t>(m), Complex{0, 0});
    for (Index k = 0; k < n; ++k) {
      a[static_cast<std::size_t>(k)] = x[k] * chirp[static_cast<std::size_t>(k)];
    }
    radix2(a.data(), m, m_tw_fwd);
    for (Index k = 0; k < m; ++k) {
      a[static_cast<std::size_t>(k)] *= b_spectrum[static_cast<std::size_t>(k)];
    }
    radix2(a.data(), m, m_tw_bwd);
    const Real inv_m = Real{1} / static_cast<Real>(m);
    for (Index k = 0; k < n; ++k) {
      x[k] = a[static_cast<std::size_t>(k)] * chirp[static_cast<std::size_t>(k)] *
             inv_m;
    }
  }

  /// Batched Bluestein forward on an element-major tile; work arrays
  /// wr/wi hold the padded length-m lines. Expression order mirrors
  /// forward_bluestein exactly (bitwise-equal lines).
  void forward_bluestein_many(Real* re, Real* im, Index nt, Real* wr,
                              Real* wi) const {
    const Index total = m * nt;
    std::fill(wr, wr + total, Real{0});
    std::fill(wi, wi + total, Real{0});
    for (Index k = 0; k < n; ++k) {
      const Complex c = chirp[static_cast<std::size_t>(k)];
      const Real cr = c.real(), ci = c.imag();
      const Real* xr = re + k * nt;
      const Real* xi = im + k * nt;
      Real* ar = wr + k * nt;
      Real* ai = wi + k * nt;
#pragma omp simd
      for (Index t = 0; t < nt; ++t) {
        ar[t] = xr[t] * cr - xi[t] * ci;
        ai[t] = xr[t] * ci + xi[t] * cr;
      }
    }
    radix2_many(wr, wi, m, nt, m_tw_fwd);
    for (Index k = 0; k < m; ++k) {
      const Complex b = b_spectrum[static_cast<std::size_t>(k)];
      const Real br = b.real(), bi = b.imag();
      Real* ar = wr + k * nt;
      Real* ai = wi + k * nt;
#pragma omp simd
      for (Index t = 0; t < nt; ++t) {
        const Real r = ar[t] * br - ai[t] * bi;
        const Real i = ar[t] * bi + ai[t] * br;
        ar[t] = r;
        ai[t] = i;
      }
    }
    radix2_many(wr, wi, m, nt, m_tw_bwd);
    const Real inv_m = Real{1} / static_cast<Real>(m);
    for (Index k = 0; k < n; ++k) {
      const Complex c = chirp[static_cast<std::size_t>(k)];
      const Real cr = c.real(), ci = c.imag();
      const Real* ar = wr + k * nt;
      const Real* ai = wi + k * nt;
      Real* xr = re + k * nt;
      Real* xi = im + k * nt;
#pragma omp simd
      for (Index t = 0; t < nt; ++t) {
        const Real r = ar[t] * cr - ai[t] * ci;
        const Real i = ar[t] * ci + ai[t] * cr;
        xr[t] = r * inv_m;
        xi[t] = i * inv_m;
      }
    }
  }

  /// One element-major tile, forward or inverse; wr/wi may be null for
  /// the power-of-two path.
  void transform_tile(Real* re, Real* im, Index nt, bool inverse, Real* wr,
                      Real* wi) const {
    if (m == 0) {
      radix2_many(re, im, n, nt, inverse ? tw_bwd : tw_fwd);
      if (inverse) scale_many(re, im, n, nt, Real{1} / static_cast<Real>(n));
      return;
    }
    if (!inverse) {
      forward_bluestein_many(re, im, nt, wr, wi);
      return;
    }
    // IFFT(x) = conj(FFT(conj(x))) / n, as in Fft1D::inverse.
    const Index total = n * nt;
#pragma omp simd
    for (Index i = 0; i < total; ++i) im[i] = -im[i];
    forward_bluestein_many(re, im, nt, wr, wi);
    const Real inv = Real{1} / static_cast<Real>(n);
#pragma omp simd
    for (Index i = 0; i < total; ++i) re[i] *= inv;
#pragma omp simd
    for (Index i = 0; i < total; ++i) im[i] = -im[i] * inv;
  }
};

Fft1D::Fft1D(Index n) : impl_(std::make_unique<Impl>()) {
  LRT_CHECK(n >= 1, "FFT length must be >= 1, got " << n);
  impl_->n = n;
  if (is_power_of_two(n)) {
    impl_->tw_fwd = make_twiddles(n, -1);
    impl_->tw_bwd = make_twiddles(n, +1);
    return;
  }
  // Bluestein setup.
  const Index m = next_power_of_two(2 * n - 1);
  impl_->m = m;
  impl_->m_tw_fwd = make_twiddles(m, -1);
  impl_->m_tw_bwd = make_twiddles(m, +1);
  impl_->chirp.resize(static_cast<std::size_t>(n));
  for (Index k = 0; k < n; ++k) {
    // Reduce k² mod 2n before the trig call to keep the argument small for
    // large n (k² overflows Real precision around n ~ 1e8 otherwise).
    const long long k2 = (static_cast<long long>(k) * k) % (2 * n);
    const Real angle = -kPi * static_cast<Real>(k2) / static_cast<Real>(n);
    impl_->chirp[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), std::sin(angle));
  }
  std::vector<Complex> b(static_cast<std::size_t>(m), Complex{0, 0});
  for (Index k = 0; k < n; ++k) {
    const Complex value = std::conj(impl_->chirp[static_cast<std::size_t>(k)]);
    b[static_cast<std::size_t>(k)] = value;
    if (k > 0) b[static_cast<std::size_t>(m - k)] = value;
  }
  radix2(b.data(), m, impl_->m_tw_fwd);
  impl_->b_spectrum = std::move(b);
}

Fft1D::~Fft1D() = default;
Fft1D::Fft1D(Fft1D&&) noexcept = default;
Fft1D& Fft1D::operator=(Fft1D&&) noexcept = default;

Index Fft1D::size() const { return impl_->n; }

void Fft1D::forward(Complex* x) const {
  if (impl_->m == 0) {
    impl_->forward_pow2(x);
  } else {
    impl_->forward_bluestein(x);
  }
}

void Fft1D::inverse(Complex* x) const {
  const Index n = impl_->n;
  if (impl_->m == 0) {
    impl_->backward_pow2(x);
    const Real inv = Real{1} / static_cast<Real>(n);
    for (Index k = 0; k < n; ++k) x[k] *= inv;
    return;
  }
  // Arbitrary n: inverse via conjugation, IFFT(x) = conj(FFT(conj(x)))/n.
  for (Index k = 0; k < n; ++k) x[k] = std::conj(x[k]);
  impl_->forward_bluestein(x);
  const Real inv = Real{1} / static_cast<Real>(n);
  for (Index k = 0; k < n; ++k) x[k] = std::conj(x[k]) * inv;
}

void Fft1D::transform_many(Complex* base, Index count, Index stride,
                           Index dist, bool inverse) const {
  const Index n = impl_->n;
  LRT_CHECK(count >= 0, "bad batch count " << count);
  LRT_CHECK(stride >= 1, "bad element stride " << stride);
  LRT_CHECK(count <= 1 || dist >= 1, "bad line distance " << dist);
  if (count == 0 || n == 1) return;  // length-1 transforms are identities

  static obs::Counter& batches = obs::counter("fft.fft1d.batches");
  static obs::Counter& lines = obs::counter("fft.fft1d.lines");
  batches.add(1);
  lines.add(count);

  // Tile so one split-complex tile (plus the Bluestein work arrays)
  // stays cache-resident: ~2 * 8 bytes * tile * (n + m).
  const Index rows = n + impl_->m;
  const Index tile = std::clamp<Index>(Index{8192} / rows, Index{4}, Index{32});
  [[maybe_unused]] const bool par =
      !in_parallel() && count > tile && double(count) * double(n) > 16384.0;

#pragma omp parallel if (par)
  {
    std::vector<Real> re(static_cast<std::size_t>(tile * n));
    std::vector<Real> im(static_cast<std::size_t>(tile * n));
    std::vector<Real> wr, wi;
    if (impl_->m != 0) {
      wr.resize(static_cast<std::size_t>(tile * impl_->m));
      wi.resize(static_cast<std::size_t>(tile * impl_->m));
    }
#pragma omp for schedule(static)
    for (Index l0 = 0; l0 < count; l0 += tile) {
      const Index nt = std::min(tile, count - l0);
      Complex* src = base + l0 * dist;
      gather_tile(src, nt, n, stride, dist, re.data(), im.data());
      impl_->transform_tile(re.data(), im.data(), nt, inverse, wr.data(),
                            wi.data());
      scatter_tile(src, nt, n, stride, dist, re.data(), im.data());
    }
  }
}

void Fft1D::forward_many(Complex* base, Index count, Index stride,
                         Index dist) const {
  transform_many(base, count, stride, dist, /*inverse=*/false);
}

void Fft1D::inverse_many(Complex* base, Index count, Index stride,
                         Index dist) const {
  transform_many(base, count, stride, dist, /*inverse=*/true);
}

void fft_forward(Complex* x, Index n) { Fft1D(n).forward(x); }

void fft_inverse(Complex* x, Index n) { Fft1D(n).inverse(x); }

}  // namespace lrt::fft
