#include "dft/synthetic.hpp"

#include <cmath>

#include "common/random.hpp"
#include "la/ortho.hpp"

namespace lrt::dft {
namespace {

/// Fills `out` (Nr x nb) with random Gaussian-lobe combinations and
/// orthonormalizes in the l2 metric.
la::RealMatrix make_block(const grid::RealSpaceGrid& grid, Index nb,
                          const std::vector<grid::Vec3>& centers, Real width,
                          Rng& rng) {
  const Index nr = grid.size();
  const Index nat = static_cast<Index>(centers.size());
  la::RealMatrix block(nr, nb);

  // Per-center lobe values, computed once (Nr x centers).
  la::RealMatrix lobes(nr, nat);
  const Real inv_w2 = Real{1} / (width * width);
  for (Index i = 0; i < nr; ++i) {
    const grid::Vec3 r = grid.position(i);
    for (Index a = 0; a < nat; ++a) {
      const grid::Vec3 d = grid.cell().minimum_image(
          centers[static_cast<std::size_t>(a)], r);
      lobes(i, a) = std::exp(-grid::norm2(d) * inv_w2);
    }
  }

  // Each orbital: random signed combination of a few lobes with a random
  // low-order plane-wave modulation to break degeneracy (mimicking bonding
  // / antibonding character).
  for (Index j = 0; j < nb; ++j) {
    std::vector<Real> coeff(static_cast<std::size_t>(nat));
    for (Index a = 0; a < nat; ++a) {
      coeff[static_cast<std::size_t>(a)] = rng.normal();
    }
    const Real kx = constants::kTwoPi *
                    static_cast<Real>(rng.uniform_index(3)) /
                    grid.cell().length(0);
    const Real phase = rng.uniform(0.0, constants::kTwoPi);
    for (Index i = 0; i < nr; ++i) {
      Real value = 0;
      for (Index a = 0; a < nat; ++a) {
        value += coeff[static_cast<std::size_t>(a)] * lobes(i, a);
      }
      const grid::Vec3 r = grid.position(i);
      block(i, j) = value * (Real{1} + Real{0.3} * std::cos(kx * r[0] + phase));
    }
  }
  la::cholqr2(block.view());
  return block;
}

}  // namespace

SyntheticOrbitals make_synthetic_orbitals(const grid::RealSpaceGrid& grid,
                                          Index nv, Index nc,
                                          const SyntheticOptions& options) {
  LRT_CHECK(nv >= 1 && nc >= 1, "need at least one orbital per block");
  Rng rng(options.seed);

  // Synthetic atom lattice: jittered regular placement.
  std::vector<grid::Vec3> centers;
  const Index per_axis = std::max<Index>(
      1, static_cast<Index>(std::round(std::cbrt(
             static_cast<Real>(options.num_centers)))));
  for (Index a = 0; a < options.num_centers; ++a) {
    const Index ix = a % per_axis;
    const Index iy = (a / per_axis) % per_axis;
    const Index iz = a / (per_axis * per_axis);
    grid::Vec3 c;
    const Index cells[3] = {ix, iy, iz};
    for (int ax = 0; ax < 3; ++ax) {
      const Real l = grid.cell().length(ax);
      c[static_cast<std::size_t>(ax)] =
          (static_cast<Real>(cells[ax]) + Real{0.5} +
           Real{0.15} * rng.uniform(-1.0, 1.0)) *
          l / static_cast<Real>(per_axis);
    }
    centers.push_back(grid.cell().wrap(c));
  }

  SyntheticOrbitals result;
  result.psi_v = make_block(grid, nv, centers, options.width, rng);
  result.psi_c = make_block(grid, nc, centers, options.width * Real{1.3}, rng);
  // Conduction block must be orthogonal to valence for a well-posed pair
  // space; project and re-orthonormalize.
  la::project_out(result.psi_v.view(), result.psi_c.view());
  la::cholqr2(result.psi_c.view());

  // Convert to physical dv normalization.
  const Real to_physical = Real{1} / std::sqrt(grid.dv());
  for (Index i = 0; i < grid.size(); ++i) {
    for (Index j = 0; j < nv; ++j) result.psi_v(i, j) *= to_physical;
    for (Index j = 0; j < nc; ++j) result.psi_c(i, j) *= to_physical;
  }

  // Energy ladders: ε_v ∈ [-span-gap/2, -gap/2], ε_c ∈ [gap/2, gap/2+span].
  result.eps_v.resize(static_cast<std::size_t>(nv));
  result.eps_c.resize(static_cast<std::size_t>(nc));
  for (Index j = 0; j < nv; ++j) {
    result.eps_v[static_cast<std::size_t>(j)] =
        -options.gap / 2 - options.valence_span *
                               static_cast<Real>(nv - 1 - j) /
                               std::max<Index>(1, nv - 1);
  }
  for (Index j = 0; j < nc; ++j) {
    result.eps_c[static_cast<std::size_t>(j)] =
        options.gap / 2 + options.conduction_span * static_cast<Real>(j) /
                              std::max<Index>(1, nc - 1);
  }
  return result;
}

}  // namespace lrt::dft
