#include "dft/xc.hpp"

#include <algorithm>
#include <cmath>

namespace lrt::dft {
namespace {

using constants::kPi;

// Slater exchange constant: εx = -Cx n^{1/3}, Cx = (3/4)(3/π)^{1/3}.
const Real kCx = 0.75 * std::cbrt(3.0 / kPi);

// PZ81 unpolarized correlation parameters.
constexpr Real kGamma = -0.1423;
constexpr Real kBeta1 = 1.0529;
constexpr Real kBeta2 = 0.3334;
constexpr Real kA = 0.0311;
constexpr Real kB = -0.048;
constexpr Real kC = 0.0020;
constexpr Real kD = -0.0116;

// Densities below this are treated as vacuum (kernel and potential 0);
// avoids n^{-2/3} blowups in the empty regions of molecular boxes.
constexpr Real kDensityFloor = 1e-12;

Real rs_of(Real n) { return std::cbrt(3.0 / (4.0 * kPi * n)); }

/// εc(rs) and dεc/drs.
void pz_correlation(Real rs, Real& ec, Real& dec_drs) {
  if (rs >= 1.0) {
    const Real sq = std::sqrt(rs);
    const Real den = 1.0 + kBeta1 * sq + kBeta2 * rs;
    ec = kGamma / den;
    dec_drs = -kGamma * (0.5 * kBeta1 / sq + kBeta2) / (den * den);
  } else {
    const Real ln = std::log(rs);
    ec = kA * ln + kB + kC * rs * ln + kD * rs;
    dec_drs = kA / rs + kC * (ln + 1.0) + kD;
  }
}

/// d²εc/drs² (needed for fxc).
Real pz_correlation_second(Real rs) {
  if (rs >= 1.0) {
    const Real sq = std::sqrt(rs);
    const Real den = 1.0 + kBeta1 * sq + kBeta2 * rs;
    const Real dden = 0.5 * kBeta1 / sq + kBeta2;
    const Real d2den = -0.25 * kBeta1 / (rs * sq);
    // ec = γ/den; ec'' = γ (2 den'² - den den'') / den³.
    return kGamma * (2.0 * dden * dden - den * d2den) / (den * den * den);
  }
  return -kA / (rs * rs) + kC / rs;
}

}  // namespace

Real lda_exc(Real n) {
  if (n < kDensityFloor) return 0.0;
  const Real ex = -kCx * std::cbrt(n);
  Real ec, dec;
  pz_correlation(rs_of(n), ec, dec);
  return ex + ec;
}

Real lda_vxc(Real n) {
  if (n < kDensityFloor) return 0.0;
  // vx = d(n εx)/dn = (4/3) εx.
  const Real vx = -(4.0 / 3.0) * kCx * std::cbrt(n);
  const Real rs = rs_of(n);
  Real ec, dec_drs;
  pz_correlation(rs, ec, dec_drs);
  // vc = εc - (rs/3) dεc/drs.
  const Real vc = ec - (rs / 3.0) * dec_drs;
  return vx + vc;
}

Real lda_fxc(Real n) {
  if (n < kDensityFloor) return 0.0;
  // Exchange: fx = dvx/dn = -(4/9) Cx n^{-2/3}.
  const Real fx = -(4.0 / 9.0) * kCx / std::cbrt(n * n);
  // Correlation: vc(n) = εc - (rs/3) εc'; with drs/dn = -rs/(3n),
  // fc = dvc/dn = (rs/(9n)) (rs εc'' - 2 εc')... derive:
  //   dvc/drs = εc' - (1/3)εc' - (rs/3) εc'' = (2/3) εc' - (rs/3) εc''
  //   fc = dvc/drs * drs/dn = [(2/3)εc' - (rs/3)εc''] * (-rs/(3n))
  const Real rs = rs_of(n);
  Real ec, dec_drs;
  pz_correlation(rs, ec, dec_drs);
  const Real d2ec = pz_correlation_second(rs);
  const Real dvc_drs = (2.0 / 3.0) * dec_drs - (rs / 3.0) * d2ec;
  const Real fc = dvc_drs * (-rs / (3.0 * n));
  return fx + fc;
}

std::vector<Real> lda_vxc_array(const std::vector<Real>& density) {
  std::vector<Real> v(density.size());
  std::transform(density.begin(), density.end(), v.begin(), lda_vxc);
  return v;
}

std::vector<Real> lda_fxc_array(const std::vector<Real>& density) {
  std::vector<Real> f(density.size());
  std::transform(density.begin(), density.end(), f.begin(), lda_fxc);
  return f;
}

Real lda_exc_energy(const std::vector<Real>& density, Real dv) {
  Real sum = 0.0;
  for (const Real n : density) sum += n * lda_exc(n);
  return sum * dv;
}

}  // namespace lrt::dft
