#include "dft/pseudopotential.hpp"

#include <cmath>

#include "fft/fft3d.hpp"

namespace lrt::dft {

using constants::kFourPi;
using constants::kPi;
using constants::kTwoPi;

Real hgh_local_form_factor(const grid::Species& sp, Real g2) {
  LRT_CHECK(g2 > 0, "form factor needs G != 0; use hgh_local_g0");
  const Real x2 = g2 * sp.r_loc * sp.r_loc;
  const Real x4 = x2 * x2;
  const Real x6 = x4 * x2;
  const Real gauss = std::exp(-0.5 * x2);
  const Real coulomb = -kFourPi * sp.z_ion / g2;
  const Real r3 = sp.r_loc * sp.r_loc * sp.r_loc;
  const Real poly = sp.c1 + sp.c2 * (3.0 - x2) +
                    sp.c3 * (15.0 - 10.0 * x2 + x4) +
                    sp.c4 * (105.0 - 105.0 * x2 + 21.0 * x4 - x6);
  return gauss * (coulomb + std::sqrt(8.0 * kPi * kPi * kPi) * r3 * poly);
}

Real hgh_local_g0(const grid::Species& sp) {
  const Real r2 = sp.r_loc * sp.r_loc;
  const Real r3 = r2 * sp.r_loc;
  return kTwoPi * sp.z_ion * r2 +
         std::pow(kTwoPi, Real{1.5}) * r3 *
             (sp.c1 + 3.0 * sp.c2 + 15.0 * sp.c3 + 105.0 * sp.c4);
}

std::vector<Real> build_local_potential(const grid::RealSpaceGrid& grid,
                                        const grid::GVectors& gvectors,
                                        const grid::Structure& structure) {
  const Index nr = grid.size();
  const Real inv_volume = Real{1} / grid.cell().volume();
  std::vector<fft::Complex> vg(static_cast<std::size_t>(nr),
                               fft::Complex{0, 0});

  // Precompute per-species form factors once per G shell? G vectors are
  // not shelled here (orthorhombic), so evaluate directly — the grid is
  // laptop-scale by construction.
  for (Index ig = 0; ig < nr; ++ig) {
    const Real g2 = gvectors.g2(ig);
    const grid::Vec3 g = gvectors.g(ig);
    fft::Complex total{0, 0};
    for (const grid::Atom& atom : structure.atoms) {
      const grid::Species& sp =
          structure.species[static_cast<std::size_t>(atom.species)];
      const Real form = (g2 > Real{1e-12}) ? hgh_local_form_factor(sp, g2)
                                           : hgh_local_g0(sp);
      const Real phase = -(g[0] * atom.position[0] + g[1] * atom.position[1] +
                           g[2] * atom.position[2]);
      total += form * fft::Complex(std::cos(phase), std::sin(phase));
    }
    vg[static_cast<std::size_t>(ig)] = total * inv_volume;
  }

  // V(r) = Σ_G Ṽ(G) e^{iGr}: undo the 1/N of the normalized inverse.
  const auto shape = grid.shape();
  fft::Fft3D fft3(shape[0], shape[1], shape[2]);
  for (auto& v : vg) v *= static_cast<Real>(nr);
  std::vector<Real> vloc(static_cast<std::size_t>(nr));
  fft3.inverse_real(vg.data(), vloc.data());
  return vloc;
}

namespace {

/// HGH radial projector p_i^l(r) (HGH 1998 Eq. 8), normalized so that
/// ∫ p² r² dr = 1.
Real hgh_radial_projector(int l, int i, Real rl, Real r) {
  // Γ(l + (4i-1)/2) for the cases used: (l=0,i=1) -> Γ(3/2) = √π/2,
  // (l=0,i=2) -> Γ(7/2) = 15√π/8, (l=1,i=1) -> Γ(5/2) = 3√π/4.
  Real gamma = 0;
  const Real sqrt_pi = std::sqrt(kPi);
  if (l == 0 && i == 1) gamma = 0.5 * sqrt_pi;
  if (l == 0 && i == 2) gamma = 15.0 / 8.0 * sqrt_pi;
  if (l == 1 && i == 1) gamma = 0.75 * sqrt_pi;
  LRT_CHECK(gamma > 0, "unsupported projector channel l=" << l << " i=" << i);
  const Real power = static_cast<Real>(l + 2 * (i - 1));
  const Real exponent = static_cast<Real>(l) + (4.0 * i - 1.0) / 2.0;
  return std::sqrt(2.0) * std::pow(r, power) *
         std::exp(-0.5 * (r / rl) * (r / rl)) /
         (std::pow(rl, exponent) * std::sqrt(gamma));
}

}  // namespace

NonlocalProjectors::NonlocalProjectors(const grid::RealSpaceGrid& grid,
                                       const grid::Structure& structure)
    : dv_(grid.dv()) {
  const Index nr = grid.size();

  // One entry per (channel, i, m): l = 0 has m = 0 only; l = 1 has three.
  struct Channel {
    int l;
    int i;
    Real rl;
    Real h;
    int m;  ///< 0 for s; 0,1,2 = x,y,z for p
  };

  for (const grid::Atom& atom : structure.atoms) {
    const grid::Species& sp =
        structure.species[static_cast<std::size_t>(atom.species)];
    std::vector<Channel> channels;
    if (sp.r_s > 0 && sp.h11_s != 0) channels.push_back({0, 1, sp.r_s, sp.h11_s, 0});
    if (sp.r_s > 0 && sp.h22_s != 0) channels.push_back({0, 2, sp.r_s, sp.h22_s, 0});
    if (sp.r_p > 0 && sp.h11_p != 0) {
      for (int m = 0; m < 3; ++m) channels.push_back({1, 1, sp.r_p, sp.h11_p, m});
    }

    for (const Channel& ch : channels) {
      // Gaussian decay: 6 r_l captures ~1e-7 of the tail; also stay below
      // half the smallest cell edge so the minimum image is unambiguous.
      Real rcut = 6.0 * ch.rl;
      for (int ax = 0; ax < 3; ++ax) {
        rcut = std::min(rcut, 0.49 * grid.cell().length(ax));
      }

      Projector proj;
      proj.h = ch.h;
      const Real y00 = 1.0 / std::sqrt(4.0 * kPi);
      const Real y1_norm = std::sqrt(3.0 / (4.0 * kPi));
      for (Index g = 0; g < nr; ++g) {
        const grid::Vec3 d =
            grid.cell().minimum_image(atom.position, grid.position(g));
        const Real r2 = grid::norm2(d);
        if (r2 > rcut * rcut) continue;
        const Real r = std::sqrt(r2);
        Real value = 0;
        if (ch.l == 0) {
          value = hgh_radial_projector(0, ch.i, ch.rl, r) * y00;
        } else {
          // p_1^1 carries one power of r; fold it into the direction
          // cosine so r -> 0 is regular: p(r) Y_1m = C · d_m · e^{...}.
          const Real radial_over_r =
              (r > 1e-12) ? hgh_radial_projector(1, 1, ch.rl, r) / r
                          : hgh_radial_projector(1, 1, ch.rl, 1e-12) / 1e-12;
          value = radial_over_r * y1_norm *
                  d[static_cast<std::size_t>(ch.m)];
        }
        if (value != 0) {
          proj.points.push_back(g);
          proj.values.push_back(value);
        }
      }
      if (proj.points.empty()) continue;

      // Renormalize on the grid: the analytic norm ∫|w|² = 1 suffers on
      // coarse meshes; rescaling restores ⟨p|p⟩ = 1 exactly in the grid
      // metric so h keeps its meaning.
      Real norm2_grid = 0;
      for (const Real v : proj.values) norm2_grid += v * v;
      norm2_grid *= dv_;
      if (norm2_grid > 0) {
        const Real scale = 1.0 / std::sqrt(norm2_grid);
        for (Real& v : proj.values) v *= scale;
      }
      projectors_.push_back(std::move(proj));
    }
  }
}

void NonlocalProjectors::accumulate(la::RealConstView psi,
                                    la::RealView out) const {
  LRT_CHECK(psi.rows() == out.rows() && psi.cols() == out.cols(),
            "nonlocal accumulate shape mismatch");
  const Index k = psi.cols();
  for (const Projector& proj : projectors_) {
    const Index np = static_cast<Index>(proj.points.size());
    for (Index j = 0; j < k; ++j) {
      Real coeff = 0;
      for (Index t = 0; t < np; ++t) {
        coeff += proj.values[static_cast<std::size_t>(t)] *
                 psi(proj.points[static_cast<std::size_t>(t)], j);
      }
      coeff *= dv_ * proj.h;
      for (Index t = 0; t < np; ++t) {
        out(proj.points[static_cast<std::size_t>(t)], j) +=
            coeff * proj.values[static_cast<std::size_t>(t)];
      }
    }
  }
}

Real NonlocalProjectors::energy(const Real* psi) const {
  Real total = 0;
  for (const Projector& proj : projectors_) {
    Real coeff = 0;
    for (std::size_t t = 0; t < proj.points.size(); ++t) {
      coeff += proj.values[t] * psi[proj.points[t]];
    }
    coeff *= dv_;
    total += proj.h * coeff * coeff;
  }
  return total;
}

std::vector<Real> initial_density(const grid::RealSpaceGrid& grid,
                                  const grid::Structure& structure,
                                  Real sigma) {
  const Index nr = grid.size();
  std::vector<Real> density(static_cast<std::size_t>(nr), Real{0});
  const Real norm =
      Real{1} / (std::pow(kPi, Real{1.5}) * sigma * sigma * sigma);
  const Real inv_s2 = Real{1} / (sigma * sigma);

  for (Index i = 0; i < nr; ++i) {
    const grid::Vec3 r = grid.position(i);
    Real value = 0;
    for (const grid::Atom& atom : structure.atoms) {
      const grid::Species& sp =
          structure.species[static_cast<std::size_t>(atom.species)];
      const grid::Vec3 d = grid.cell().minimum_image(atom.position, r);
      value += sp.z_ion * norm * std::exp(-grid::norm2(d) * inv_s2);
    }
    density[static_cast<std::size_t>(i)] = value;
  }

  // Renormalize exactly to the electron count (the Gaussian tails are
  // clipped by the minimum-image truncation).
  Real total = 0;
  for (const Real v : density) total += v;
  total *= grid.dv();
  const Real target = structure.num_electrons();
  LRT_CHECK(total > 0, "empty initial density");
  const Real scale = target / total;
  for (Real& v : density) v *= scale;
  return density;
}

}  // namespace lrt::dft
