// Synthetic Kohn-Sham orbital generator for scaling studies.
//
// The paper's largest experiments (Si1000 … Si4096, Nr up to 4.6M) need a
// cluster to generate self-consistent orbitals. For the complexity and
// scaling benches we substitute orbitals with the same structure ISDF
// exploits — smooth, spatially localized functions on the periodic grid
// whose pair products are numerically low-rank — built as random linear
// combinations of Gaussian lobes centered on a synthetic "atom" lattice,
// then orthonormalized. Energies come as filled valence/conduction
// ladders with a gap, matching silicon's spectrum shape.
#pragma once

#include "grid/rsgrid.hpp"
#include "la/matrix.hpp"

namespace lrt::dft {

struct SyntheticOptions {
  Index num_centers = 8;   ///< Gaussian centers ("atoms") in the cell
  Real width = 1.8;        ///< lobe width, Bohr
  Real gap = 0.1;          ///< Kohn-Sham gap between ε_v and ε_c ladders
  Real valence_span = 0.4; ///< ε_v spread below the gap
  Real conduction_span = 0.5;
  unsigned seed = 1234;
};

struct SyntheticOrbitals {
  la::RealMatrix psi_v;        ///< Nr x Nv, ∫ψψ dv = δ
  la::RealMatrix psi_c;        ///< Nr x Nc
  std::vector<Real> eps_v;     ///< ascending
  std::vector<Real> eps_c;     ///< ascending, all > max(eps_v) + gap
};

/// Generates Nv valence and Nc conduction orbitals on `grid`.
SyntheticOrbitals make_synthetic_orbitals(const grid::RealSpaceGrid& grid,
                                          Index nv, Index nc,
                                          const SyntheticOptions& options = {});

}  // namespace lrt::dft
