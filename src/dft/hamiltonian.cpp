#include "dft/hamiltonian.hpp"

#include "common/error.hpp"

namespace lrt::dft {

KsHamiltonian::KsHamiltonian(const grid::RealSpaceGrid& grid,
                             const grid::GVectors& gvectors)
    : nr_(grid.size()),
      fft_(grid.shape()[0], grid.shape()[1], grid.shape()[2]),
      half_g2_(static_cast<std::size_t>(nr_)),
      veff_(static_cast<std::size_t>(nr_), Real{0}) {
  for (Index i = 0; i < nr_; ++i) {
    half_g2_[static_cast<std::size_t>(i)] = Real{0.5} * gvectors.g2(i);
  }
}

void KsHamiltonian::set_potential(std::vector<Real> veff) {
  LRT_CHECK(static_cast<Index>(veff.size()) == nr_,
            "potential size mismatch");
  veff_ = std::move(veff);
}

void KsHamiltonian::apply(la::RealConstView psi, la::RealView out) const {
  LRT_CHECK(psi.rows() == nr_ && out.rows() == nr_ &&
                psi.cols() == out.cols(),
            "apply shape mismatch");
  const Index k = psi.cols();
  std::vector<fft::Complex> work(static_cast<std::size_t>(nr_));
  std::vector<Real> kin(static_cast<std::size_t>(nr_));

  for (Index j = 0; j < k; ++j) {
    // Kinetic: FFT column j, multiply ½G², inverse FFT.
    for (Index i = 0; i < nr_; ++i) {
      work[static_cast<std::size_t>(i)] = fft::Complex(psi(i, j), 0);
    }
    fft_.forward(work.data());
    for (Index i = 0; i < nr_; ++i) {
      work[static_cast<std::size_t>(i)] *= half_g2_[static_cast<std::size_t>(i)];
    }
    fft_.inverse_real(work.data(), kin.data());
    for (Index i = 0; i < nr_; ++i) {
      out(i, j) = kin[static_cast<std::size_t>(i)] +
                  veff_[static_cast<std::size_t>(i)] * psi(i, j);
    }
  }
  if (nonlocal_) nonlocal_->accumulate(psi, out);
}

Real KsHamiltonian::kinetic_energy(const Real* psi) const {
  std::vector<fft::Complex> work(static_cast<std::size_t>(nr_));
  for (Index i = 0; i < nr_; ++i) {
    work[static_cast<std::size_t>(i)] = fft::Complex(psi[i], 0);
  }
  fft_.forward(work.data());
  // ⟨ψ|½G²|ψ⟩ in G space; forward FFT is unnormalized so divide by Nr
  // to get Parseval-consistent coefficients relative to l2-normalized ψ.
  Real sum = 0;
  for (Index i = 0; i < nr_; ++i) {
    sum += half_g2_[static_cast<std::size_t>(i)] *
           std::norm(work[static_cast<std::size_t>(i)]);
  }
  return sum / static_cast<Real>(nr_);
}

void KsHamiltonian::precondition(la::RealView r,
                                 const std::vector<Real>& ekin) const {
  const Index k = r.cols();
  LRT_CHECK(static_cast<Index>(ekin.size()) >= k, "ekin per column required");
  std::vector<fft::Complex> work(static_cast<std::size_t>(nr_));
  std::vector<Real> filtered(static_cast<std::size_t>(nr_));
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < nr_; ++i) {
      work[static_cast<std::size_t>(i)] = fft::Complex(r(i, j), 0);
    }
    fft_.forward(work.data());
    const Real scale =
        std::max(ekin[static_cast<std::size_t>(j)], Real{1e-3});
    for (Index i = 0; i < nr_; ++i) {
      // Teter-Payne-Allan rational filter in x = T/E_kin.
      const Real x = half_g2_[static_cast<std::size_t>(i)] / scale;
      const Real x2 = x * x;
      const Real x3 = x2 * x;
      const Real num = 27.0 + 18.0 * x + 12.0 * x2 + 8.0 * x3;
      const Real den = num + 16.0 * x3 * x;
      work[static_cast<std::size_t>(i)] *= num / den;
    }
    fft_.inverse_real(work.data(), filtered.data());
    for (Index i = 0; i < nr_; ++i) {
      r(i, j) = filtered[static_cast<std::size_t>(i)];
    }
  }
}

}  // namespace lrt::dft
