#include "dft/hartree.hpp"

namespace lrt::dft {

fft::PoissonSolver make_poisson_solver(const grid::RealSpaceGrid& grid,
                                       const grid::GVectors& gvectors) {
  const auto shape = grid.shape();
  return fft::PoissonSolver(fft::Fft3D(shape[0], shape[1], shape[2]),
                            gvectors.g2_table());
}

}  // namespace lrt::dft
