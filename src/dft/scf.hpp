// Self-consistent field driver — the "PWDFT" ground-state substrate.
//
// Produces the inputs every LR-TDDFT calculation consumes: Kohn-Sham
// orbital energies ε_i and real-space orbitals ψ_i(r) for N_v valence
// (occupied) plus N_c conduction (virtual) states, all from a plane-wave
// LDA calculation with HGH local pseudopotentials.
#pragma once

#include "dft/hamiltonian.hpp"
#include "grid/crystal.hpp"
#include "grid/gvectors.hpp"

namespace lrt::dft {

struct ScfOptions {
  Real ecut = 8.0;              ///< kinetic cutoff, Hartree
  Index num_conduction = 4;     ///< virtual states to converge beyond N_v
  Index max_iterations = 40;
  Real density_tolerance = 1e-6;  ///< ||n_out - n_in|| * dv convergence
  Real mixing = 0.4;              ///< linear density mixing factor
  /// Kerker screening wavevector q0 (bohr⁻¹): the density update is
  /// filtered by G²/(G² + q0²), suppressing the long-wavelength charge
  /// sloshing that plagues plain linear mixing. 0 disables.
  Real kerker_q0 = 0.8;
  /// Pulay (DIIS) mixing history length; 1 falls back to plain linear
  /// mixing.
  Index pulay_history = 5;
  /// Fermi-Dirac smearing width (Hartree). Fractional occupations remove
  /// the occupation flipping of near-degenerate frontier states that
  /// otherwise stalls the SCF on small supercells. 0 = integer filling.
  Real smearing = 0.01;
  Index band_iterations = 80;     ///< LOBPCG cap per SCF step
  Real band_tolerance = 1e-7;
  unsigned seed = 42;
  bool verbose = false;
};

struct KohnShamResult {
  grid::RealSpaceGrid grid;
  std::vector<Real> eigenvalues;  ///< all converged bands, ascending
  /// Orbitals as Nr x Nb columns, normalized to ∫|ψ|² dv = 1 (dv metric).
  la::RealMatrix orbitals;
  Index num_occupied = 0;         ///< N_v (double occupation)
  std::vector<Real> density;      ///< converged n(r), electrons/bohr³
  std::vector<Real> veff;         ///< converged effective potential
  std::vector<Real> occupations;  ///< per band, in [0, 2]
  Real fermi_level = 0;           ///< smearing chemical potential
  Real total_energy = 0;          ///< Hartree
  Real band_gap = 0;              ///< ε_{Nv} - ε_{Nv-1}
  bool converged = false;
  Index iterations = 0;

  /// Valence / conduction column blocks (views into `orbitals`).
  la::RealConstView valence() const {
    return orbitals.view().cols_block(0, num_occupied);
  }
  la::RealConstView conduction() const {
    return orbitals.view().cols_block(
        num_occupied, orbitals.cols() - num_occupied);
  }
};

/// Runs the SCF loop to convergence.
KohnShamResult solve_ground_state(const grid::Structure& structure,
                                  const ScfOptions& options = {});

}  // namespace lrt::dft
