#include "dft/scf.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/log.hpp"
#include "dft/ewald.hpp"
#include "dft/hartree.hpp"
#include "dft/lobpcg_gs.hpp"
#include "dft/pseudopotential.hpp"
#include "dft/xc.hpp"
#include "la/lu.hpp"

namespace lrt::dft {
namespace {

/// Fermi-Dirac occupations (0..2 per band) for `total_electrons`, with the
/// chemical potential found by bisection. width == 0 gives integer filling.
std::vector<Real> fermi_occupations(const std::vector<Real>& eigenvalues,
                                    Real total_electrons, Real width,
                                    Real* fermi_out) {
  const std::size_t nb = eigenvalues.size();
  std::vector<Real> occ(nb, 0.0);
  if (width <= 0) {
    const Index filled = static_cast<Index>(std::llround(total_electrons / 2));
    for (Index i = 0; i < filled; ++i) occ[static_cast<std::size_t>(i)] = 2.0;
    if (fermi_out) {
      *fermi_out = filled > 0 ? eigenvalues[static_cast<std::size_t>(filled - 1)]
                              : 0.0;
    }
    return occ;
  }
  auto count = [&](Real mu) {
    Real sum = 0;
    for (const Real e : eigenvalues) {
      sum += 2.0 / (1.0 + std::exp((e - mu) / width));
    }
    return sum;
  };
  Real lo = eigenvalues.front() - 20 * width;
  Real hi = eigenvalues.back() + 20 * width;
  for (int it = 0; it < 200; ++it) {
    const Real mid = 0.5 * (lo + hi);
    if (count(mid) < total_electrons) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Real mu = 0.5 * (lo + hi);
  for (std::size_t i = 0; i < nb; ++i) {
    occ[i] = 2.0 / (1.0 + std::exp((eigenvalues[i] - mu) / width));
  }
  if (fermi_out) *fermi_out = mu;
  return occ;
}

/// Density from l2-normalized orbital columns with per-band occupations:
/// n(r) = Σ_b f_b |ψ_b(r)|² / dv.
std::vector<Real> density_from_orbitals(la::RealConstView orbitals,
                                        const std::vector<Real>& occupations,
                                        Real dv) {
  const Index nr = orbitals.rows();
  std::vector<Real> n(static_cast<std::size_t>(nr), Real{0});
  for (Index j = 0; j < orbitals.cols(); ++j) {
    const Real f = occupations[static_cast<std::size_t>(j)];
    if (f < 1e-12) continue;
    for (Index i = 0; i < nr; ++i) {
      n[static_cast<std::size_t>(i)] += f * orbitals(i, j) * orbitals(i, j);
    }
  }
  const Real scale = Real{1} / dv;
  for (Real& v : n) v *= scale;
  return n;
}

/// Pulay (DIIS) mixer over Kerker-filtered residuals.
class PulayMixer {
 public:
  /// `target_sum` is the exact electron count the output density must
  /// integrate to (with volume element `dv`): the nonnegativity clamp can
  /// add charge, and the Kerker filter (zero at G = 0) cannot remove it,
  /// so the mixer renormalizes explicitly.
  PulayMixer(Index history, Real alpha, Real target_sum, Real dv)
      : history_(history), alpha_(alpha), target_sum_(target_sum), dv_(dv) {}

  /// Computes the next input density from (n_in, filtered residual).
  std::vector<Real> next(const std::vector<Real>& n_in,
                         const std::vector<Real>& residual) {
    const std::size_t n = n_in.size();

    // Stagnation / blow-up guards: if the residual norm stopped improving
    // (degenerate history makes the DIIS system singular and the update
    // collapses onto the fixed point) or grew sharply, restart from a
    // plain damped step.
    Real norm = 0;
    for (const Real r : residual) norm += r * r;
    norm = std::sqrt(norm);
    if (!history_norms_.empty()) {
      const Real best =
          *std::min_element(history_norms_.begin(), history_norms_.end());
      if (norm > 2.0 * best || norm > 0.999 * last_norm_) {
        ++stall_count_;
      } else {
        stall_count_ = 0;
      }
      if (stall_count_ >= 2) {
        inputs_.clear();
        residuals_.clear();
        history_norms_.clear();
        stall_count_ = 0;
      }
    }
    last_norm_ = norm;

    inputs_.push_back(n_in);
    residuals_.push_back(residual);
    history_norms_.push_back(norm);
    if (static_cast<Index>(inputs_.size()) > history_) {
      inputs_.pop_front();
      residuals_.pop_front();
      history_norms_.pop_front();
    }
    const Index m = static_cast<Index>(inputs_.size());

    std::vector<Real> coeff(static_cast<std::size_t>(m), Real{0});
    if (m == 1) {
      coeff[0] = 1.0;
    } else {
      // Minimize ||Σ c_i R_i||² subject to Σ c_i = 1 via the bordered
      // normal-equation system, with a small Tikhonov ridge so nearly
      // collinear histories stay solvable.
      la::RealMatrix a(m + 1, m + 1);
      la::RealMatrix b(m + 1, 1);
      Real max_diag = 0;
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j <= i; ++j) {
          Real dot = 0;
          const auto& ri = residuals_[static_cast<std::size_t>(i)];
          const auto& rj = residuals_[static_cast<std::size_t>(j)];
          for (std::size_t k = 0; k < n; ++k) dot += ri[k] * rj[k];
          a(i, j) = dot;
          a(j, i) = dot;
        }
        max_diag = std::max(max_diag, a(i, i));
        a(i, m) = 1.0;
        a(m, i) = 1.0;
      }
      for (Index i = 0; i < m; ++i) a(i, i) += 1e-10 * max_diag;
      b(m, 0) = 1.0;
      bool solved = true;
      la::RealMatrix x;
      try {
        x = la::solve(a.view(), b.view());
      } catch (const Error&) {
        solved = false;
      }
      // Reject wild extrapolations (|c| explosion from near-singularity).
      Real coeff_norm = 0;
      if (solved) {
        for (Index i = 0; i < m; ++i) {
          coeff_norm = std::max(coeff_norm, std::abs(x(i, 0)));
        }
      }
      if (solved && coeff_norm < 50.0) {
        for (Index i = 0; i < m; ++i) coeff[static_cast<std::size_t>(i)] = x(i, 0);
      } else {
        coeff.back() = 1.0;  // plain damped step on the newest pair
      }
    }

    std::vector<Real> next_density(n, Real{0});
    for (Index i = 0; i < m; ++i) {
      const Real c = coeff[static_cast<std::size_t>(i)];
      const auto& ni = inputs_[static_cast<std::size_t>(i)];
      const auto& ri = residuals_[static_cast<std::size_t>(i)];
      for (std::size_t k = 0; k < n; ++k) {
        next_density[k] += c * (ni[k] + alpha_ * ri[k]);
      }
    }
    // Numerical guards: densities must stay nonnegative and integrate to
    // the exact electron count.
    for (Real& v : next_density) v = std::max(v, Real{0});
    Real total = 0;
    for (const Real v : next_density) total += v;
    total *= dv_;
    if (total > 0) {
      const Real scale = target_sum_ / total;
      for (Real& v : next_density) v *= scale;
    }
    return next_density;
  }

 private:
  Index history_;
  Real alpha_;
  Real target_sum_;
  Real dv_;
  std::deque<std::vector<Real>> inputs_;
  std::deque<std::vector<Real>> residuals_;
  std::deque<Real> history_norms_;
  Real last_norm_ = 1e30;
  int stall_count_ = 0;
};

}  // namespace

KohnShamResult solve_ground_state(const grid::Structure& structure,
                                  const ScfOptions& options) {
  KohnShamResult result;
  result.grid = grid::RealSpaceGrid::from_cutoff(structure.cell, options.ecut);
  const grid::RealSpaceGrid& g = result.grid;
  const grid::GVectors gvectors(g);
  const Real dv = g.dv();
  const Index nr = g.size();

  const Index nv = structure.num_occupied();
  const Index nb = nv + options.num_conduction;
  const Real total_electrons = structure.num_electrons();
  LRT_CHECK(3 * nb <= nr, "grid too small for " << nb << " bands (Nr=" << nr
                                                << "); raise ecut");

  const std::vector<Real> vloc =
      build_local_potential(g, gvectors, structure);
  const fft::PoissonSolver poisson = make_poisson_solver(g, gvectors);
  KsHamiltonian h(g, gvectors);
  auto nonlocal = std::make_shared<const NonlocalProjectors>(g, structure);
  h.set_nonlocal(nonlocal);

  std::vector<Real> density = initial_density(g, structure);
  std::vector<Real> vhartree(static_cast<std::size_t>(nr));

  la::RealMatrix orbitals;  // warm start carrier, l2-normalized columns
  std::vector<Real> eigenvalues;
  std::vector<Real> occupations;

  // Kerker filter applied to the raw residual n_out - n_in before it
  // enters the Pulay mixer (G = 0 untouched: filter value 0 preserves the
  // electron count exactly).
  const auto shape = g.shape();
  fft::Fft3D mixer_fft(shape[0], shape[1], shape[2]);
  auto kerker_filter = [&](std::vector<Real>& delta) {
    if (options.kerker_q0 <= 0) return;
    std::vector<fft::Complex> work(static_cast<std::size_t>(nr));
    mixer_fft.forward(delta.data(), work.data());
    const Real q02 = options.kerker_q0 * options.kerker_q0;
    for (Index i = 0; i < nr; ++i) {
      const Real g2 = gvectors.g2(i);
      work[static_cast<std::size_t>(i)] *= g2 / (g2 + q02);
    }
    mixer_fft.inverse_real(work.data(), delta.data());
  };

  PulayMixer mixer(std::max<Index>(1, options.pulay_history), options.mixing,
                   total_electrons, dv);
  Real residual = 1e9;

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Effective potential from the current density.
    poisson.solve(density.data(), vhartree.data());
    const std::vector<Real> vxc = lda_vxc_array(density);
    std::vector<Real> veff(static_cast<std::size_t>(nr));
    for (Index i = 0; i < nr; ++i) {
      veff[static_cast<std::size_t>(i)] = vloc[static_cast<std::size_t>(i)] +
                                          vhartree[static_cast<std::size_t>(i)] +
                                          vxc[static_cast<std::size_t>(i)];
    }
    h.set_potential(std::move(veff));

    // Lowest nb bands, warm-started; band tolerance tracks the density
    // residual (solving bands to 1e-7 under a potential that is still off
    // by 1e-1 is wasted work).
    BandSolveOptions band_opts;
    band_opts.max_iterations = options.band_iterations;
    band_opts.tolerance = std::clamp(Real{1e-3} * residual,
                                     options.band_tolerance, Real{1e-4});
    band_opts.seed = options.seed;
    la::LobpcgResult bands =
        solve_bands(h, nb, std::move(orbitals), band_opts);
    orbitals = std::move(bands.eigenvectors);
    eigenvalues = bands.eigenvalues;

    occupations = fermi_occupations(eigenvalues, total_electrons,
                                    options.smearing, &result.fermi_level);
    if (iter == 0 && !occupations.empty() && occupations.back() > 0.05) {
      log::warn("highest computed band carries occupation ",
                occupations.back(),
                "; the smearing tail is truncated — raise "
                "ScfOptions::num_conduction or lower the smearing width, "
                "or the SCF may stall");
    }
    std::vector<Real> new_density =
        density_from_orbitals(orbitals.view(), occupations, dv);

    std::vector<Real> delta(static_cast<std::size_t>(nr));
    residual = 0;
    for (Index i = 0; i < nr; ++i) {
      delta[static_cast<std::size_t>(i)] =
          new_density[static_cast<std::size_t>(i)] -
          density[static_cast<std::size_t>(i)];
      residual += delta[static_cast<std::size_t>(i)] *
                  delta[static_cast<std::size_t>(i)];
    }
    residual = std::sqrt(residual * dv);

    if (options.verbose) {
      log::info("SCF iter ", iter + 1, "  |dn|=", residual,
                "  eps0=", eigenvalues.empty() ? 0.0 : eigenvalues[0]);
    }

    if (residual < options.density_tolerance) {
      density = std::move(new_density);
      result.converged = true;
      break;
    }

    kerker_filter(delta);
    density = mixer.next(density, delta);
  }

  // Final quantities at the converged density.
  poisson.solve(density.data(), vhartree.data());
  const std::vector<Real> vxc = lda_vxc_array(density);
  std::vector<Real> veff(static_cast<std::size_t>(nr));
  for (Index i = 0; i < nr; ++i) {
    veff[static_cast<std::size_t>(i)] = vloc[static_cast<std::size_t>(i)] +
                                        vhartree[static_cast<std::size_t>(i)] +
                                        vxc[static_cast<std::size_t>(i)];
  }

  // Total energy: E = T_s + E_nl + ∫V_loc n + E_H + E_xc + E_II.
  Real kinetic = 0;
  {
    std::vector<Real> column(static_cast<std::size_t>(nr));
    for (Index j = 0; j < nb; ++j) {
      const Real f = occupations[static_cast<std::size_t>(j)];
      if (f < 1e-12) continue;
      for (Index i = 0; i < nr; ++i) {
        column[static_cast<std::size_t>(i)] = orbitals(i, j);
      }
      // Columns are l2-normalized here; NonlocalProjectors::energy is
      // quadratic in the dv-metric coefficient, so divide by dv once.
      kinetic += f * (h.kinetic_energy(column.data()) +
                      nonlocal->energy(column.data()) / dv);
    }
  }
  Real e_ext = 0;
  for (Index i = 0; i < nr; ++i) {
    e_ext += vloc[static_cast<std::size_t>(i)] *
             density[static_cast<std::size_t>(i)];
  }
  e_ext *= dv;
  const Real e_hartree = poisson.energy(density.data(), vhartree.data(), dv);
  const Real e_xc = lda_exc_energy(density, dv);
  const Real e_ii = ewald_energy(structure);
  result.total_energy = kinetic + e_ext + e_hartree + e_xc + e_ii;

  // Convert orbitals to the physical dv metric: ψ_phys = ψ_l2 / sqrt(dv).
  const Real to_physical = Real{1} / std::sqrt(dv);
  for (Index i = 0; i < nr; ++i) {
    for (Index j = 0; j < orbitals.cols(); ++j) {
      orbitals(i, j) *= to_physical;
    }
  }

  result.orbitals = std::move(orbitals);
  result.eigenvalues = std::move(eigenvalues);
  result.occupations = std::move(occupations);
  result.num_occupied = nv;
  result.density = std::move(density);
  result.veff = std::move(veff);
  if (static_cast<Index>(result.eigenvalues.size()) > nv && nv > 0) {
    result.band_gap = result.eigenvalues[static_cast<std::size_t>(nv)] -
                      result.eigenvalues[static_cast<std::size_t>(nv - 1)];
  }
  return result;
}

}  // namespace lrt::dft
