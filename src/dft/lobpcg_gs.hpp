// Ground-state band solver: lowest Kohn-Sham eigenpairs via the generic
// LOBPCG with the kinetic (Teter) preconditioner.
#pragma once

#include "dft/hamiltonian.hpp"
#include "la/lobpcg.hpp"

namespace lrt::dft {

struct BandSolveOptions {
  Index max_iterations = 120;
  Real tolerance = 1e-6;
  unsigned seed = 42;
};

/// Solves for the lowest `num_bands` states. `initial` may be empty (random
/// start) or provide a warm start from the previous SCF iteration.
la::LobpcgResult solve_bands(const KsHamiltonian& h, Index num_bands,
                             la::RealMatrix initial,
                             const BandSolveOptions& options = {});

}  // namespace lrt::dft
