// Local density approximation (LDA) exchange-correlation.
//
// Slater exchange plus Perdew-Zunger 1981 parametrization of the Ceperley-
// Alder correlation energy (unpolarized). Three quantities are exposed:
//   exc(n)  — energy density per electron
//   vxc(n)  — potential δ(n εxc)/δn, entering the KS Hamiltonian
//   fxc(n)  — kernel δ²(n εxc)/δn² = dvxc/dn, the adiabatic-LDA (ALDA)
//             exchange-correlation kernel of the Casida equation (paper
//             Eq 4, second term).
#pragma once

#include <vector>

#include "common/config.hpp"

namespace lrt::dft {

Real lda_exc(Real density);
Real lda_vxc(Real density);
Real lda_fxc(Real density);

/// Vectorized helpers over a density array.
std::vector<Real> lda_vxc_array(const std::vector<Real>& density);
std::vector<Real> lda_fxc_array(const std::vector<Real>& density);

/// E_xc[n] = ∫ n εxc(n) with volume element dv.
Real lda_exc_energy(const std::vector<Real>& density, Real dv);

}  // namespace lrt::dft
