// Kohn-Sham Hamiltonian on the plane-wave grid.
//
// H ψ = -½∇²ψ + V_eff(r) ψ with the kinetic term applied in reciprocal
// space (diagonal ½|G|²) and the effective potential in real space —
// the standard dual-space application that makes the FFT the workhorse.
// Orbitals are real-valued columns (Γ-point calculation); one complex
// work array is reused across columns.
#pragma once

#include <vector>

#include <memory>

#include "dft/pseudopotential.hpp"
#include "fft/fft3d.hpp"
#include "grid/gvectors.hpp"
#include "la/matrix.hpp"

namespace lrt::dft {

class KsHamiltonian {
 public:
  KsHamiltonian(const grid::RealSpaceGrid& grid,
                const grid::GVectors& gvectors);

  /// Sets the effective potential V_loc + V_H + V_xc (size Nr).
  void set_potential(std::vector<Real> veff);
  const std::vector<Real>& potential() const { return veff_; }

  /// Attaches the Kleinman-Bylander nonlocal part (may be null).
  void set_nonlocal(std::shared_ptr<const NonlocalProjectors> nonlocal) {
    nonlocal_ = std::move(nonlocal);
  }
  const NonlocalProjectors* nonlocal() const { return nonlocal_.get(); }

  Index grid_size() const { return nr_; }

  /// out = H * psi for a block of orbital columns (Nr x k).
  void apply(la::RealConstView psi, la::RealView out) const;

  /// Kinetic energy ⟨ψ|-½∇²|ψ⟩ of a single l2-normalized column.
  Real kinetic_energy(const Real* psi) const;

  /// Teter-Payne-Allan-style kinetic preconditioner applied to a residual
  /// block in place, with per-column kinetic scale `ekin`.
  void precondition(la::RealView r, const std::vector<Real>& ekin) const;

 private:
  Index nr_;
  fft::Fft3D fft_;
  std::vector<Real> half_g2_;  ///< ½|G|² table
  std::vector<Real> veff_;
  std::shared_ptr<const NonlocalProjectors> nonlocal_;
};

}  // namespace lrt::dft
