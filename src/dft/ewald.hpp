// Ewald summation of the ion-ion interaction energy for a neutral
// periodic cell with a compensating uniform background.
//
// Needed for total-energy validation of the SCF substrate; excitation
// energies never see it (it shifts all states equally).
#pragma once

#include "grid/crystal.hpp"

namespace lrt::dft {

/// Ion-ion Coulomb energy (Hartree) of the structure under periodic
/// boundary conditions. Splitting parameter and lattice cutoffs are chosen
/// automatically for ~1e-10 absolute convergence.
Real ewald_energy(const grid::Structure& structure);

}  // namespace lrt::dft
