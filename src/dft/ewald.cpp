#include "dft/ewald.hpp"

#include <cmath>
#include <complex>

namespace lrt::dft {

using constants::kFourPi;
using constants::kPi;
using constants::kTwoPi;

Real ewald_energy(const grid::Structure& structure) {
  const grid::UnitCell& cell = structure.cell;
  const Real volume = cell.volume();
  const Index natoms = structure.num_atoms();
  LRT_CHECK(natoms > 0, "ewald: empty structure");

  auto charge = [&](Index a) {
    return structure
        .species[static_cast<std::size_t>(
            structure.atoms[static_cast<std::size_t>(a)].species)]
        .z_ion;
  };

  // Standard balanced splitting parameter.
  const Real eta =
      std::sqrt(kPi) *
      std::pow(static_cast<Real>(natoms) / (volume * volume), Real{1.0 / 6.0});

  // Accuracy target ~1e-10: erfc(x) < 1e-10 at x ≈ 4.75; exp(-y²) likewise.
  const Real x_cut = 4.75;
  const Real r_cut = x_cut / eta;
  const Real g_cut = 2.0 * eta * x_cut;

  Real total_charge = 0;
  Real sum_q2 = 0;
  for (Index a = 0; a < natoms; ++a) {
    total_charge += charge(a);
    sum_q2 += charge(a) * charge(a);
  }

  // Real-space sum over periodic images within r_cut.
  Real e_real = 0;
  std::array<Index, 3> nmax;
  for (int ax = 0; ax < 3; ++ax) {
    nmax[static_cast<std::size_t>(ax)] =
        static_cast<Index>(std::ceil(r_cut / cell.length(ax))) + 1;
  }
  for (Index a = 0; a < natoms; ++a) {
    for (Index b = 0; b < natoms; ++b) {
      const Real qq = charge(a) * charge(b);
      const grid::Vec3& ra = structure.atoms[static_cast<std::size_t>(a)].position;
      const grid::Vec3& rb = structure.atoms[static_cast<std::size_t>(b)].position;
      for (Index lx = -nmax[0]; lx <= nmax[0]; ++lx) {
        for (Index ly = -nmax[1]; ly <= nmax[1]; ++ly) {
          for (Index lz = -nmax[2]; lz <= nmax[2]; ++lz) {
            if (a == b && lx == 0 && ly == 0 && lz == 0) continue;
            const Real dx = rb[0] - ra[0] + static_cast<Real>(lx) * cell.length(0);
            const Real dy = rb[1] - ra[1] + static_cast<Real>(ly) * cell.length(1);
            const Real dz = rb[2] - ra[2] + static_cast<Real>(lz) * cell.length(2);
            const Real r = std::sqrt(dx * dx + dy * dy + dz * dz);
            if (r > r_cut) continue;
            e_real += 0.5 * qq * std::erfc(eta * r) / r;
          }
        }
      }
    }
  }

  // Reciprocal-space sum.
  Real e_recip = 0;
  std::array<Index, 3> gmax;
  for (int ax = 0; ax < 3; ++ax) {
    gmax[static_cast<std::size_t>(ax)] =
        static_cast<Index>(std::ceil(g_cut * cell.length(ax) / kTwoPi)) + 1;
  }
  for (Index mx = -gmax[0]; mx <= gmax[0]; ++mx) {
    for (Index my = -gmax[1]; my <= gmax[1]; ++my) {
      for (Index mz = -gmax[2]; mz <= gmax[2]; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        const Real gx = kTwoPi * static_cast<Real>(mx) / cell.length(0);
        const Real gy = kTwoPi * static_cast<Real>(my) / cell.length(1);
        const Real gz = kTwoPi * static_cast<Real>(mz) / cell.length(2);
        const Real g2 = gx * gx + gy * gy + gz * gz;
        if (g2 > g_cut * g_cut) continue;
        std::complex<Real> s{0, 0};
        for (Index a = 0; a < natoms; ++a) {
          const grid::Vec3& r = structure.atoms[static_cast<std::size_t>(a)].position;
          const Real phase = gx * r[0] + gy * r[1] + gz * r[2];
          s += charge(a) * std::complex<Real>(std::cos(phase), std::sin(phase));
        }
        e_recip += (kTwoPi / volume) * std::exp(-g2 / (4.0 * eta * eta)) /
                   g2 * std::norm(s);
      }
    }
  }

  // Self-interaction and neutralizing-background corrections.
  const Real e_self = -eta / std::sqrt(kPi) * sum_q2;
  const Real e_background =
      -kPi / (2.0 * eta * eta * volume) * total_charge * total_charge;

  return e_real + e_recip + e_self + e_background;
}

}  // namespace lrt::dft
