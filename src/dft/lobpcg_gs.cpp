#include "dft/lobpcg_gs.hpp"

#include "common/random.hpp"

namespace lrt::dft {

la::LobpcgResult solve_bands(const KsHamiltonian& h, Index num_bands,
                             la::RealMatrix initial,
                             const BandSolveOptions& options) {
  const Index nr = h.grid_size();
  LRT_CHECK(num_bands >= 1 && 3 * num_bands <= nr,
            "band count " << num_bands << " incompatible with grid " << nr);

  if (initial.rows() != nr || initial.cols() != num_bands) {
    Rng rng(options.seed);
    initial = la::RealMatrix::random_normal(nr, num_bands, rng);
  }

  la::BlockOperator apply = [&h](la::RealConstView x, la::RealView y) {
    h.apply(x, y);
  };

  // The Ritz value is a good per-column kinetic scale once the potential
  // is roughly constant-shifted; clamp positive inside precondition().
  la::BlockPreconditioner prec = [&h](la::RealView r,
                                      const std::vector<Real>& theta) {
    std::vector<Real> ekin(theta.size());
    for (std::size_t j = 0; j < theta.size(); ++j) {
      ekin[j] = std::max(std::abs(theta[j]), Real{0.5});
    }
    h.precondition(r, ekin);
  };

  la::LobpcgOptions opts;
  opts.max_iterations = options.max_iterations;
  opts.tolerance = options.tolerance;
  return la::lobpcg(apply, prec, std::move(initial), opts);
}

}  // namespace lrt::dft
