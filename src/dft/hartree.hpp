// Hartree potential on the simulation grid: a thin grid-aware wrapper
// around fft::PoissonSolver.
#pragma once

#include "fft/poisson.hpp"
#include "grid/gvectors.hpp"

namespace lrt::dft {

/// Builds the Poisson solver for a grid (FFT plans + |G|² table).
fft::PoissonSolver make_poisson_solver(const grid::RealSpaceGrid& grid,
                                       const grid::GVectors& gvectors);

}  // namespace lrt::dft
