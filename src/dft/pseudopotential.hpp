// HGH norm-conserving pseudopotential, local part.
//
// The analytic Fourier transform of the Hartwigsen-Goedecker-Hutter local
// potential (HGH 1998, Eq 1; x = |G| r_loc):
//   v(G) = (1/Ω) e^{-x²/2} [ -4π Z_ion/G²
//          + √(8π³) r_loc³ (C1 + C2(3-x²) + C3(15-10x²+x⁴)
//                           + C4(105-105x²+21x⁴-x⁶)) ]
// The divergent -4πZ/G² piece at G=0 cancels against the Hartree and
// Ewald backgrounds for a neutral cell; the finite G=0 remainder is the
// standard "alpha Z" term  (1/Ω)[2π Z r_loc² + (2π)^{3/2} r_loc³
// (C1 + 3C2 + 15C3 + 105C4)].
//
// Nonlocal projectors are intentionally omitted (documented substitution,
// see DESIGN.md): the LR-TDDFT algorithms under study consume orbitals and
// energies, not the pseudopotential form.
#pragma once

#include <vector>

#include "grid/crystal.hpp"
#include "grid/gvectors.hpp"
#include "la/matrix.hpp"

namespace lrt::dft {

/// Species-local form factor v(|G|) * Ω (volume factor applied by caller).
Real hgh_local_form_factor(const grid::Species& sp, Real g2);

/// Finite G = 0 term of the form factor (times Ω).
Real hgh_local_g0(const grid::Species& sp);

/// Builds the total local ionic potential on the real-space grid by
/// structure-factor summation in reciprocal space.
std::vector<Real> build_local_potential(const grid::RealSpaceGrid& grid,
                                        const grid::GVectors& gvectors,
                                        const grid::Structure& structure);

/// Superposition of atomic Gaussian charges, normalized to the total
/// valence electron count — the SCF starting density.
std::vector<Real> initial_density(const grid::RealSpaceGrid& grid,
                                  const grid::Structure& structure,
                                  Real sigma = 1.2);

/// Nonlocal HGH channels in Kleinman-Bylander separable form,
///   V_nl = Σ_{a,l,i,m} h_i^l |p_i^lm,a⟩⟨p_i^lm,a| ,
/// with the Gaussian-type HGH radial projectors (HGH 1998 Eq. 8)
///   p_i^l(r) = √2 r^{l+2(i-1)} e^{-r²/2r_l²} /
///              (r_l^{l+(4i-1)/2} √Γ(l+(4i-1)/2))
/// tabulated on real-space grid points inside a cutoff sphere and
/// renormalized on the grid. Off-diagonal h12 couplings are dropped
/// (diagonal-KB simplification; see DESIGN.md).
class NonlocalProjectors {
 public:
  NonlocalProjectors(const grid::RealSpaceGrid& grid,
                     const grid::Structure& structure);

  Index num_projectors() const {
    return static_cast<Index>(projectors_.size());
  }

  /// Accumulates V_nl ψ into `out` (both Nr x k). Works for any uniform
  /// column normalization (the dv factors cancel; see implementation).
  void accumulate(la::RealConstView psi, la::RealView out) const;

  /// Nonlocal energy Σ_proj h ⟨p|ψ⟩² of one dv-normalized column.
  Real energy(const Real* psi) const;

 private:
  struct Projector {
    std::vector<Index> points;  ///< grid indices inside the cutoff sphere
    std::vector<Real> values;   ///< projector values at those points
    Real h = 0;                 ///< channel strength
  };

  std::vector<Projector> projectors_;
  Real dv_ = 0;
};

}  // namespace lrt::dft
