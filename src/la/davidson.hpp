// Block Davidson eigensolver (Davidson 1975, the paper's reference [8]).
//
// The other standard iterative subspace method for the lowest k eigenpairs
// of a symmetric operator: the search subspace GROWS by a block of
// preconditioned residuals every iteration (up to max_subspace, then a
// thick restart keeps the current Ritz vectors), unlike LOBPCG's fixed
// three-block subspace. Davidson usually needs fewer iterations but more
// memory; the eigensolver ablation bench compares both on the Casida
// problem.
#pragma once

#include "la/lobpcg.hpp"  // BlockOperator / BlockPreconditioner

namespace lrt::la {

struct DavidsonOptions {
  Index max_iterations = 200;
  Real tolerance = 1e-6;      ///< ||H x - θ x|| <= tol * max(1, |θ|)
  Index max_subspace = 0;     ///< basis cap; 0 -> 8 * k
};

struct DavidsonResult {
  std::vector<Real> eigenvalues;  ///< ascending, size k
  RealMatrix eigenvectors;        ///< n x k orthonormal columns
  Index iterations = 0;
  Index operator_applications = 0;  ///< block applies of H
  bool converged = false;
  std::vector<Real> residual_norms;
};

/// Lowest x0.cols() eigenpairs of the operator. The preconditioner (may be
/// empty) is applied in place to the residual block with the current Ritz
/// values, exactly as in lobpcg().
DavidsonResult davidson(const BlockOperator& apply_h,
                        const BlockPreconditioner& preconditioner,
                        RealMatrix x0, const DavidsonOptions& options = {});

}  // namespace lrt::la
