#include "la/lobpcg.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/eig.hpp"
#include "la/ortho.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace lrt::la {
namespace {

/// Builds the horizontal concatenation [a | b | c] (c may be empty).
RealMatrix hcat(RealConstView a, RealConstView b, RealConstView c) {
  const Index n = a.rows();
  const Index k = a.cols() + b.cols() + c.cols();
  RealMatrix s(n, k);
  copy(a, s.view().cols_block(0, a.cols()));
  copy(b, s.view().cols_block(a.cols(), b.cols()));
  if (c.cols() > 0) {
    copy(c, s.view().cols_block(a.cols() + b.cols(), c.cols()));
  }
  return s;
}

}  // namespace

LobpcgResult lobpcg(const BlockOperator& apply_h,
                    const BlockPreconditioner& preconditioner, RealMatrix x0,
                    const LobpcgOptions& options) {
  const obs::Span span("la.lobpcg");
  const Index n = x0.rows();
  const Index k = x0.cols();
  LRT_CHECK(n > 0 && k > 0, "lobpcg: empty initial block");
  LRT_CHECK(3 * k <= n,
            "lobpcg: block size " << k << " too large for dimension " << n
                                  << " (needs 3k <= n)");

  LobpcgResult result;
  result.eigenvalues.assign(static_cast<std::size_t>(k), Real{0});
  result.residual_norms.assign(static_cast<std::size_t>(k), Real{0});

  RealMatrix x;
  RealMatrix hx;
  RealMatrix p;   // previous direction block (empty in iteration 0)
  RealMatrix hp;  // H * P maintained alongside
  std::vector<Real> previous_values;
  Index start_iter = 0;

  if (options.restore != nullptr) {
    // Resume mid-run: the snapshot holds the full end-of-iteration state
    // (X, HX, P, HP, values), so the initial orthonormalization and
    // Rayleigh-Ritz are skipped and the loop continues where it stopped —
    // bit-identically, see docs/RESILIENCE.md.
    const LobpcgCheckpoint& ck = *options.restore;
    LRT_CHECK(ck.x.rows() == n && ck.x.cols() == k,
              "lobpcg restore: snapshot block is "
                  << ck.x.rows() << "x" << ck.x.cols() << ", expected " << n
                  << "x" << k);
    x = ck.x;
    hx = ck.hx;
    p = ck.p;
    hp = ck.hp;
    result.eigenvalues = ck.eigenvalues;
    previous_values = ck.previous_values;
    start_iter = ck.iteration;
  } else {
    x = std::move(x0);
    cholqr2(x.view());

    hx.resize(n, k);
    apply_h(x.view(), hx.view());

    // Initial Rayleigh-Ritz inside span(X).
    const RealMatrix xhx = gemm(Trans::kYes, Trans::kNo, x.view(), hx.view());
    EigResult rr = syev(xhx.view());
    x = gemm(Trans::kNo, Trans::kNo, x.view(), rr.vectors.view());
    hx = gemm(Trans::kNo, Trans::kNo, hx.view(), rr.vectors.view());
    result.eigenvalues = rr.values;
    previous_values = result.eigenvalues;
  }

  for (Index iter = start_iter; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Residual block R = HX - X Θ.
    RealMatrix r = to_matrix<Real>(hx.view());
    for (Index j = 0; j < k; ++j) {
      const Real theta = result.eigenvalues[static_cast<std::size_t>(j)];
      for (Index i = 0; i < n; ++i) r(i, j) -= theta * x(i, j);
    }

    bool all_converged = true;
    for (Index j = 0; j < k; ++j) {
      Real norm = 0.0;
      for (Index i = 0; i < n; ++i) norm += r(i, j) * r(i, j);
      norm = std::sqrt(norm);
      result.residual_norms[static_cast<std::size_t>(j)] = norm;
      const Real scale = std::max(
          Real{1}, std::abs(result.eigenvalues[static_cast<std::size_t>(j)]));
      if (norm > options.tolerance * scale) all_converged = false;
    }
    if (all_converged) {
      result.converged = true;
      break;
    }
    if (options.value_tolerance > 0 && iter > 0) {
      Real max_move = 0.0;
      for (Index j = 0; j < k; ++j) {
        max_move = std::max(
            max_move, std::abs(result.eigenvalues[static_cast<std::size_t>(j)] -
                               previous_values[static_cast<std::size_t>(j)]));
      }
      if (max_move < options.value_tolerance) {
        result.converged = true;
        break;
      }
    }
    previous_values = result.eigenvalues;

    // Preconditioned residual W (paper Eq 16-17), orthogonalized against X
    // and P to keep the subspace basis well conditioned.
    if (preconditioner) preconditioner(r.view(), result.eigenvalues);
    project_out(x.view(), r.view());
    if (p.cols() > 0) project_out(p.view(), r.view());
    cholqr2(r.view());

    RealMatrix hr(n, k);
    apply_h(r.view(), hr.view());

    // Projected problem on S = [X, W, P] (Eq 15): Hs C = Θ Gs C.
    const RealMatrix s = hcat(x.view(), r.view(), p.view());
    const RealMatrix hs_blocks = hcat(hx.view(), hr.view(), hp.view());
    const Index m = s.cols();
    RealMatrix hs = gemm(Trans::kYes, Trans::kNo, s.view(), hs_blocks.view());
    RealMatrix gs = gram(s.view());
    // Symmetrize Hs (roundoff).
    for (Index i = 0; i < m; ++i) {
      for (Index j = i + 1; j < m; ++j) {
        const Real avg = 0.5 * (hs(i, j) + hs(j, i));
        hs(i, j) = avg;
        hs(j, i) = avg;
      }
    }

    EigResult small;
    bool used_p = p.cols() > 0;
    try {
      small = sygv(hs.view(), gs.view());
    } catch (const Error&) {
      // Gs numerically singular: drop P (soft restart) and retry with
      // the orthonormal [X, W] basis, whose Gram matrix is near identity.
      const RealMatrix s2 = hcat(x.view(), r.view(), RealMatrix().view());
      const RealMatrix hs2_blocks =
          hcat(hx.view(), hr.view(), RealMatrix().view());
      hs = gemm(Trans::kYes, Trans::kNo, s2.view(), hs2_blocks.view());
      gs = gram(s2.view());
      small = sygv(hs.view(), gs.view());
      used_p = false;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    // Coefficients of the k lowest Ritz vectors, partitioned into the
    // X / W / P blocks (C1, C2, C3 in Eq 15).
    const Index mm = used_p ? 3 * k : 2 * k;
    RealMatrix c1(k, k), c2(k, k), c3(used_p ? k : 0, used_p ? k : 0);
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < k; ++i) c1(i, j) = small.vectors(i, j);
      for (Index i = 0; i < k; ++i) c2(i, j) = small.vectors(k + i, j);
      if (used_p) {
        for (Index i = 0; i < k; ++i) c3(i, j) = small.vectors(2 * k + i, j);
      }
    }
    (void)mm;

    // New conjugate direction P = W C2 + P C3 and its image (Eq 18).
    RealMatrix new_p = gemm(Trans::kNo, Trans::kNo, r.view(), c2.view());
    RealMatrix new_hp = gemm(Trans::kNo, Trans::kNo, hr.view(), c2.view());
    if (used_p) {
      gemm(Trans::kNo, Trans::kNo, Real{1}, p.view(), c3.view(), Real{1},
           new_p.view());
      gemm(Trans::kNo, Trans::kNo, Real{1}, hp.view(), c3.view(), Real{1},
           new_hp.view());
    }

    // New block X = X C1 + P_new and image HX likewise.
    RealMatrix new_x = gemm(Trans::kNo, Trans::kNo, x.view(), c1.view());
    RealMatrix new_hx = gemm(Trans::kNo, Trans::kNo, hx.view(), c1.view());
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < k; ++j) {
        new_x(i, j) += new_p(i, j);
        new_hx(i, j) += new_hp(i, j);
      }
    }

    x = std::move(new_x);
    hx = std::move(new_hx);
    p = std::move(new_p);
    hp = std::move(new_hp);

    for (Index j = 0; j < k; ++j) {
      result.eigenvalues[static_cast<std::size_t>(j)] =
          small.values[static_cast<std::size_t>(j)];
    }

    // Periodically re-orthonormalize X and refresh HX by linear algebra
    // drift control (every 20 iterations) — keeps long runs stable.
    if ((iter + 1) % 20 == 0) {
      cholqr2(x.view());
      apply_h(x.view(), hx.view());
      const RealMatrix xhx =
          gemm(Trans::kYes, Trans::kNo, x.view(), hx.view());
      EigResult rr = syev(xhx.view());
      x = gemm(Trans::kNo, Trans::kNo, x.view(), rr.vectors.view());
      hx = gemm(Trans::kNo, Trans::kNo, hx.view(), rr.vectors.view());
      result.eigenvalues = rr.values;
      p.resize(0, 0);
      hp.resize(0, 0);
    }

    // Snapshot *after* the drift-control block: it rewrites X/HX and
    // drops P, all of which must land in the checkpoint for a resumed run
    // to replay bit-identically.
    if (options.checkpoint_interval > 0 && options.checkpoint_sink &&
        (iter + 1) % options.checkpoint_interval == 0) {
      LobpcgCheckpoint ck;
      ck.x = x;
      ck.hx = hx;
      ck.p = p;
      ck.hp = hp;
      ck.eigenvalues = result.eigenvalues;
      ck.previous_values = previous_values;
      ck.residual_norms = result.residual_norms;
      ck.iteration = iter + 1;
      options.checkpoint_sink(ck);
    }
  }

  result.eigenvectors = std::move(x);
  static obs::Counter& iterations = obs::counter("la.lobpcg.iterations");
  iterations.add(result.iterations);
  return result;
}

}  // namespace lrt::la
