#include "la/blas.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/counters.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace lrt::la {
namespace {

/// Dimension product above which gemm spawns an OpenMP team.
constexpr double kParallelFlopThreshold = 1e6;

/// Below this flop count the packed path's pack/unpack overhead is not
/// amortized; a branch-free scalar fallback runs instead.
constexpr double kPackedFlopThreshold = 2.0 * 24 * 24 * 24;

// ---------------------------------------------------------------------------
// Packed micro-kernel GEMM (docs/PERFORMANCE.md §1).
//
// BLIS-style blocking: op(B) panels of kc x nc are packed once into
// column micro-panels of width kNr, op(A) blocks of mc x kc are packed
// (alpha folded in) into row micro-panels of height kMr, and a register-
// tiled kMr x kNr micro-kernel accumulates C. Packing absorbs all four
// transpose cases, so nn/tn/nt/tt share one inner kernel. Block sizes
// are picked once at runtime from the machine's cache sizes.
// ---------------------------------------------------------------------------

constexpr Index kMr = 6;  ///< micro-tile rows (C register rows)
constexpr Index kNr = 8;  ///< micro-tile cols (one or two SIMD vectors)

struct Blocking {
  Index mc;  ///< rows of the packed A block (held in L2)
  Index kc;  ///< reduction depth of one packing pass
  Index nc;  ///< cols of the packed B panel (held in L3)
};

Index round_down_multiple(Index v, Index m) { return std::max(m, v - v % m); }

/// One-time runtime pick of the L2/L3 block parameters. Falls back to
/// conservative defaults when the cache hierarchy is not reported.
Blocking pick_blocking() {
  long long l2 = 0, l3 = 0;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
  if (l2 <= 0) l2 = 512 * 1024;
  if (l3 <= 0) l3 = 8 * 1024 * 1024;
  Blocking b;
  b.kc = 256;
  // The packed A block (mc x kc doubles) should fill about half of L2,
  // leaving room for the streaming B micro-panel and C rows.
  const Index mc_fit = static_cast<Index>(
      l2 / 2 / (b.kc * static_cast<Index>(sizeof(Real))));
  b.mc = std::clamp(round_down_multiple(mc_fit, kMr), kMr, Index{512});
  // The packed B panel (kc x nc) targets half of L3.
  const Index nc_fit = static_cast<Index>(
      l3 / 2 / (b.kc * static_cast<Index>(sizeof(Real))));
  b.nc = std::clamp(round_down_multiple(nc_fit, kNr), kNr, Index{8192});
  return b;
}

const Blocking& blocking() {
  static const Blocking b = pick_blocking();
  return b;
}

/// Packs one mr x kcur micro-panel of alpha * op(A) (zero-padded to kMr
/// rows) as kcur groups of kMr consecutive values.
void pack_a_panel(RealConstView a, bool trans, Index i0, Index mr, Index p0,
                  Index kcur, Real alpha, Real* dst) {
  if (!trans) {
    for (Index i = 0; i < mr; ++i) {
      const Real* src = a.row_ptr(i0 + i) + p0;
      for (Index p = 0; p < kcur; ++p) dst[p * kMr + i] = alpha * src[p];
    }
    for (Index i = mr; i < kMr; ++i) {
      for (Index p = 0; p < kcur; ++p) dst[p * kMr + i] = Real{0};
    }
  } else {
    for (Index p = 0; p < kcur; ++p) {
      const Real* src = a.row_ptr(p0 + p) + i0;
      Real* d = dst + p * kMr;
      for (Index i = 0; i < mr; ++i) d[i] = alpha * src[i];
      for (Index i = mr; i < kMr; ++i) d[i] = Real{0};
    }
  }
}

/// Packs one kcur x nr micro-panel of op(B) (zero-padded to kNr cols) as
/// kcur groups of kNr consecutive values.
void pack_b_panel(RealConstView b, bool trans, Index p0, Index kcur, Index j0,
                  Index nr, Real* dst) {
  if (!trans) {
    for (Index p = 0; p < kcur; ++p) {
      const Real* src = b.row_ptr(p0 + p) + j0;
      Real* d = dst + p * kNr;
      for (Index j = 0; j < nr; ++j) d[j] = src[j];
      for (Index j = nr; j < kNr; ++j) d[j] = Real{0};
    }
  } else {
    for (Index j = 0; j < nr; ++j) {
      const Real* src = b.row_ptr(j0 + j) + p0;
      for (Index p = 0; p < kcur; ++p) dst[p * kNr + j] = src[p];
    }
    for (Index j = nr; j < kNr; ++j) {
      for (Index p = 0; p < kcur; ++p) dst[p * kNr + j] = Real{0};
    }
  }
}

/// Register-tiled kMr x kNr accumulation over a packed panel pair. The
/// accumulator array is small enough to live entirely in SIMD registers;
/// target_clones picks the widest ISA the machine actually has (the
/// baseline build stays generic x86-64, so the pick happens at load
/// time, not compile time). Disabled under TSan: the multi-versioned
/// symbol's IFUNC resolver runs during relocation, before the TSan
/// runtime has initialized, and segfaults every binary linking this TU.
#if defined(__x86_64__) && defined(__has_attribute) && \
    !defined(__SANITIZE_THREAD__)
#if __has_attribute(target_clones)
__attribute__((target_clones("avx512f", "avx2,fma", "default")))
#endif
#endif
void micro_kernel(Index kcur, const Real* ap, const Real* bp,
                  Real* acc /* kMr * kNr */) {
  for (Index p = 0; p < kcur; ++p) {
    const Real a0 = ap[0];
    const Real a1 = ap[1];
    const Real a2 = ap[2];
    const Real a3 = ap[3];
    const Real a4 = ap[4];
    const Real a5 = ap[5];
#pragma omp simd
    for (Index j = 0; j < kNr; ++j) {
      const Real bj = bp[j];
      acc[0 * kNr + j] += a0 * bj;
      acc[1 * kNr + j] += a1 * bj;
      acc[2 * kNr + j] += a2 * bj;
      acc[3 * kNr + j] += a3 * bj;
      acc[4 * kNr + j] += a4 * bj;
      acc[5 * kNr + j] += a5 * bj;
    }
    ap += kMr;
    bp += kNr;
  }
}

void gemm_packed(bool ta, bool tb, Real alpha, RealConstView a,
                 RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols();
  const Index k = ta ? a.rows() : a.cols();
  const Blocking& blk = blocking();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) > kParallelFlopThreshold;

  const Index nc_max = std::min(((n + kNr - 1) / kNr) * kNr, blk.nc);
  const Index mc_max = std::min(((m + kMr - 1) / kMr) * kMr, blk.mc);
  const Index kc_max = std::min(k, blk.kc);
  std::vector<Real> bpack(static_cast<std::size_t>(nc_max * kc_max));

#pragma omp parallel if (parallel)
  {
    std::vector<Real> apack(static_cast<std::size_t>(mc_max * kc_max));
    for (Index jc = 0; jc < n; jc += blk.nc) {
      const Index ncur = std::min(blk.nc, n - jc);
      const Index npanels = (ncur + kNr - 1) / kNr;
      for (Index pc = 0; pc < k; pc += blk.kc) {
        const Index kcur = std::min(blk.kc, k - pc);
        // Pack the B panel cooperatively; the implicit barrier of the
        // worksharing loop publishes it to every thread.
#pragma omp for schedule(static)
        for (Index jp = 0; jp < npanels; ++jp) {
          const Index j0 = jc + jp * kNr;
          pack_b_panel(b, tb, pc, kcur, j0, std::min(kNr, n - j0),
                       bpack.data() + jp * kcur * kNr);
        }
#pragma omp for schedule(dynamic)
        for (Index ic = 0; ic < m; ic += blk.mc) {
          const Index mcur = std::min(blk.mc, m - ic);
          const Index mpanels = (mcur + kMr - 1) / kMr;
          for (Index ip = 0; ip < mpanels; ++ip) {
            const Index i0 = ic + ip * kMr;
            pack_a_panel(a, ta, i0, std::min(kMr, m - i0), pc, kcur, alpha,
                         apack.data() + ip * kcur * kMr);
          }
          for (Index jp = 0; jp < npanels; ++jp) {
            const Real* bpan = bpack.data() + jp * kcur * kNr;
            const Index j0 = jc + jp * kNr;
            const Index nr = std::min(kNr, n - j0);
            for (Index ip = 0; ip < mpanels; ++ip) {
              const Index i0 = ic + ip * kMr;
              const Index mr = std::min(kMr, m - i0);
              Real acc[kMr * kNr] = {};
              micro_kernel(kcur, apack.data() + ip * kcur * kMr, bpan, acc);
              if (mr == kMr && nr == kNr) {
                for (Index i = 0; i < kMr; ++i) {
                  Real* ci = c.row_ptr(i0 + i) + j0;
                  const Real* ai = acc + i * kNr;
#pragma omp simd
                  for (Index j = 0; j < kNr; ++j) ci[j] += ai[j];
                }
              } else {
                for (Index i = 0; i < mr; ++i) {
                  Real* ci = c.row_ptr(i0 + i) + j0;
                  const Real* ai = acc + i * kNr;
                  for (Index j = 0; j < nr; ++j) ci[j] += ai[j];
                }
              }
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Branch-free scalar fallback for shapes too small to amortize packing.
// alpha is applied once per (i, kk) pair, never in the innermost loop,
// and there is no data-dependent branch in any loop body.
// ---------------------------------------------------------------------------

void gemm_small_nn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  for (Index i = 0; i < m; ++i) {
    Real* ci = c.row_ptr(i);
    const Real* ai = a.row_ptr(i);
    for (Index kk = 0; kk < k; ++kk) {
      const Real aik = alpha * ai[kk];
      const Real* bk = b.row_ptr(kk);
#pragma omp simd
      for (Index j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

void gemm_small_tn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // C = Aᵀ B: C[i,:] += A[kk,i] * B[kk,:]
  const Index m = c.rows(), n = c.cols(), k = a.rows();
  for (Index kk = 0; kk < k; ++kk) {
    const Real* ak = a.row_ptr(kk);
    const Real* bk = b.row_ptr(kk);
    for (Index i = 0; i < m; ++i) {
      const Real aki = alpha * ak[i];
      Real* ci = c.row_ptr(i);
#pragma omp simd
      for (Index j = 0; j < n; ++j) ci[j] += aki * bk[j];
    }
  }
}

void gemm_small_nt(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both rows contiguous; alpha
  // multiplies the finished dot product, outside the reduction loop.
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  for (Index i = 0; i < m; ++i) {
    const Real* ai = a.row_ptr(i);
    Real* ci = c.row_ptr(i);
    for (Index j = 0; j < n; ++j) {
      ci[j] += alpha * dot(ai, b.row_ptr(j), k);
    }
  }
}

void gemm_small_tt(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // Rare and only hit at tiny sizes: materialize Bᵀ and reuse TN.
  const RealMatrix bt = transpose(b);
  gemm_small_tn(alpha, a, bt.view(), c);
}

// ---------------------------------------------------------------------------
// Reference kernels: the pre-micro-kernel blocked scalar implementation,
// kept verbatim (including its per-element zero test) as the comparison
// baseline for tests and `bench_micro_substrates --compare`.
// ---------------------------------------------------------------------------

constexpr Index kRefKBlock = 256;
constexpr Index kRefIBlock = 64;

void ref_nn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) > kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i0 = 0; i0 < m; i0 += kRefIBlock) {
    const Index i1 = std::min(i0 + kRefIBlock, m);
    for (Index k0 = 0; k0 < k; k0 += kRefKBlock) {
      const Index k1 = std::min(k0 + kRefKBlock, k);
      for (Index i = i0; i < i1; ++i) {
        Real* ci = c.row_ptr(i);
        const Real* ai = a.row_ptr(i);
        for (Index kk = k0; kk < k1; ++kk) {
          const Real aik = alpha * ai[kk];
          if (aik == Real{0}) continue;
          const Real* bk = b.row_ptr(kk);
          for (Index j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

void ref_tn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols(), k = a.rows();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) > kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i0 = 0; i0 < m; i0 += kRefIBlock) {
    const Index i1 = std::min(i0 + kRefIBlock, m);
    for (Index k0 = 0; k0 < k; k0 += kRefKBlock) {
      const Index k1 = std::min(k0 + kRefKBlock, k);
      for (Index kk = k0; kk < k1; ++kk) {
        const Real* ak = a.row_ptr(kk);
        const Real* bk = b.row_ptr(kk);
        for (Index i = i0; i < i1; ++i) {
          const Real aki = alpha * ak[i];
          if (aki == Real{0}) continue;
          Real* ci = c.row_ptr(i);
          for (Index j = 0; j < n; ++j) ci[j] += aki * bk[j];
        }
      }
    }
  }
}

void ref_nt(Real alpha, RealConstView a, RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) > kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i = 0; i < m; ++i) {
    const Real* ai = a.row_ptr(i);
    Real* ci = c.row_ptr(i);
    for (Index j = 0; j < n; ++j) {
      ci[j] += alpha * dot(ai, b.row_ptr(j), k);
    }
  }
}

void check_gemm_shapes(Trans ta, Trans tb, RealConstView a, RealConstView b,
                       RealView c, Index& m, Index& n, Index& k) {
  m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Index ka = (ta == Trans::kNo) ? a.cols() : a.rows();
  const Index kb = (tb == Trans::kNo) ? b.rows() : b.cols();
  n = (tb == Trans::kNo) ? b.cols() : b.rows();
  LRT_CHECK(ka == kb, "gemm inner dimension mismatch: " << ka << " vs " << kb);
  LRT_CHECK(c.rows() == m && c.cols() == n,
            "gemm output shape mismatch: want " << m << "x" << n << ", got "
                                                << c.rows() << "x" << c.cols());
  k = ka;
}

void scale_c(Real beta, RealView c) {
  if (beta == Real{0}) {
    c.fill(Real{0});
  } else if (beta != Real{1}) {
    for (Index i = 0; i < c.rows(); ++i) scal(beta, c.row_ptr(i), c.cols());
  }
}

}  // namespace

Real dot(const Real* x, const Real* y, Index n) {
  Real sum = 0.0;
#pragma omp simd reduction(+ : sum)
  for (Index i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

Real nrm2(const Real* x, Index n) { return std::sqrt(dot(x, x, n)); }

void axpy(Real alpha, const Real* x, Real* y, Index n) {
#pragma omp simd
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(Real alpha, Real* x, Index n) {
#pragma omp simd
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

void gemv(Trans trans, Real alpha, RealConstView a, const Real* x, Real beta,
          Real* y) {
  if (trans == Trans::kNo) {
    const Index m = a.rows(), n = a.cols();
    for (Index i = 0; i < m; ++i) {
      y[i] = beta * y[i] + alpha * dot(a.row_ptr(i), x, n);
    }
  } else {
    const Index m = a.rows(), n = a.cols();
    for (Index j = 0; j < n; ++j) y[j] *= beta;
    for (Index i = 0; i < m; ++i) {
      axpy(alpha * x[i], a.row_ptr(i), y, n);
    }
  }
}

void gemm(Trans ta, Trans tb, Real alpha, RealConstView a, RealConstView b,
          Real beta, RealView c) {
  Index m, n, k;
  check_gemm_shapes(ta, tb, a, b, c, m, n, k);
  scale_c(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == Real{0}) return;

  // No span here — gemm is called far too often for per-call trace
  // events; the FLOP counter gives the aggregate view instead.
  static obs::Counter& calls = obs::counter("la.gemm.calls");
  static obs::Counter& flops = obs::counter("la.gemm.flops");
  calls.add(1);
  flops.add(2ll * m * n * k);

  if (2.0 * double(m) * double(n) * double(k) >= kPackedFlopThreshold) {
    static obs::Counter& packed = obs::counter("la.gemm.packed_calls");
    packed.add(1);
    gemm_packed(ta == Trans::kYes, tb == Trans::kYes, alpha, a, b, c);
    return;
  }
  static obs::Counter& fallback = obs::counter("la.gemm.fallback_calls");
  fallback.add(1);
  if (ta == Trans::kNo && tb == Trans::kNo) {
    gemm_small_nn(alpha, a, b, c);
  } else if (ta == Trans::kYes && tb == Trans::kNo) {
    gemm_small_tn(alpha, a, b, c);
  } else if (ta == Trans::kNo && tb == Trans::kYes) {
    gemm_small_nt(alpha, a, b, c);
  } else {
    gemm_small_tt(alpha, a, b, c);
  }
}

void gemm_many(Trans ta, Trans tb, Real alpha,
               const std::vector<GemmBatchItem>& items, RealConstView b,
               Real beta) {
  if (items.empty()) return;
  const bool tab = ta == Trans::kYes;
  const bool tbb = tb == Trans::kYes;
  const Index n = tbb ? b.rows() : b.cols();
  const Index k = tbb ? b.cols() : b.rows();

  double total_flops = 0;
  Index m_max = 0;
  for (const GemmBatchItem& item : items) {
    Index m, ni, ki;
    check_gemm_shapes(ta, tb, item.a, b, item.c, m, ni, ki);
    scale_c(beta, item.c);
    total_flops += 2.0 * double(m) * double(n) * double(k);
    m_max = std::max(m_max, m);
  }

  static obs::Counter& batched_calls = obs::counter("la.gemm.batched_calls");
  static obs::Counter& batched_items = obs::counter("la.gemm.batched_items");
  static obs::Counter& calls = obs::counter("la.gemm.calls");
  static obs::Counter& flops = obs::counter("la.gemm.flops");
  static obs::Counter& packed = obs::counter("la.gemm.packed_calls");
  batched_calls.add(1);
  batched_items.add(static_cast<long long>(items.size()));
  calls.add(static_cast<long long>(items.size()));
  flops.add(static_cast<long long>(total_flops));
  packed.add(static_cast<long long>(items.size()));
  if (m_max == 0 || n == 0 || k == 0 || alpha == Real{0}) return;

  // Flattened (item, mc-block) task list: once a shared B panel is
  // packed, threads pick any item's block, so small items never serialize
  // the team.
  struct Task {
    std::size_t item;
    Index ic;
  };
  const Blocking& blk = blocking();
  std::size_t ntasks = 0;
  for (const GemmBatchItem& item : items) {
    ntasks += static_cast<std::size_t>((item.c.rows() + blk.mc - 1) / blk.mc);
  }
  std::vector<Task> tasks;
  tasks.reserve(ntasks);
  for (std::size_t t = 0; t < items.size(); ++t) {
    const Index m = items[t].c.rows();
    for (Index ic = 0; ic < m; ic += blk.mc) tasks.push_back({t, ic});
  }
  [[maybe_unused]] const bool parallel = total_flops > kParallelFlopThreshold;
  const Index nc_max = std::min(((n + kNr - 1) / kNr) * kNr, blk.nc);
  const Index mc_max = std::min(((m_max + kMr - 1) / kMr) * kMr, blk.mc);
  const Index kc_max = std::min(k, blk.kc);
  std::vector<Real> bpack(static_cast<std::size_t>(nc_max * kc_max));

#pragma omp parallel if (parallel)
  {
    std::vector<Real> apack(static_cast<std::size_t>(mc_max * kc_max));
    for (Index jc = 0; jc < n; jc += blk.nc) {
      const Index ncur = std::min(blk.nc, n - jc);
      const Index npanels = (ncur + kNr - 1) / kNr;
      for (Index pc = 0; pc < k; pc += blk.kc) {
        const Index kcur = std::min(blk.kc, k - pc);
#pragma omp for schedule(static)
        for (Index jp = 0; jp < npanels; ++jp) {
          const Index j0 = jc + jp * kNr;
          pack_b_panel(b, tbb, pc, kcur, j0, std::min(kNr, n - j0),
                       bpack.data() + jp * kcur * kNr);
        }
#pragma omp for schedule(dynamic)
        for (std::size_t t = 0; t < tasks.size(); ++t) {
          const GemmBatchItem& item = items[tasks[t].item];
          const Index m = item.c.rows();
          const Index ic = tasks[t].ic;
          const Index mcur = std::min(blk.mc, m - ic);
          const Index mpanels = (mcur + kMr - 1) / kMr;
          for (Index ip = 0; ip < mpanels; ++ip) {
            const Index i0 = ic + ip * kMr;
            pack_a_panel(item.a, tab, i0, std::min(kMr, m - i0), pc, kcur,
                         alpha, apack.data() + ip * kcur * kMr);
          }
          for (Index jp = 0; jp < npanels; ++jp) {
            const Real* bpan = bpack.data() + jp * kcur * kNr;
            const Index j0 = jc + jp * kNr;
            const Index nr = std::min(kNr, n - j0);
            for (Index ip = 0; ip < mpanels; ++ip) {
              const Index i0 = ic + ip * kMr;
              const Index mr = std::min(kMr, m - i0);
              Real acc[kMr * kNr] = {};
              micro_kernel(kcur, apack.data() + ip * kcur * kMr, bpan, acc);
              if (mr == kMr && nr == kNr) {
                for (Index i = 0; i < kMr; ++i) {
                  Real* ci = item.c.row_ptr(i0 + i) + j0;
                  const Real* ai = acc + i * kNr;
#pragma omp simd
                  for (Index j = 0; j < kNr; ++j) ci[j] += ai[j];
                }
              } else {
                for (Index i = 0; i < mr; ++i) {
                  Real* ci = item.c.row_ptr(i0 + i) + j0;
                  const Real* ai = acc + i * kNr;
                  for (Index j = 0; j < nr; ++j) ci[j] += ai[j];
                }
              }
            }
          }
        }
      }
    }
  }
}

void gemm_reference(Trans ta, Trans tb, Real alpha, RealConstView a,
                    RealConstView b, Real beta, RealView c) {
  Index m, n, k;
  check_gemm_shapes(ta, tb, a, b, c, m, n, k);
  scale_c(beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == Real{0}) return;
  if (ta == Trans::kNo && tb == Trans::kNo) {
    ref_nn(alpha, a, b, c);
  } else if (ta == Trans::kYes && tb == Trans::kNo) {
    ref_tn(alpha, a, b, c);
  } else if (ta == Trans::kNo && tb == Trans::kYes) {
    ref_nt(alpha, a, b, c);
  } else {
    const RealMatrix bt = transpose(b);
    ref_tn(alpha, a, bt.view(), c);
  }
}

RealMatrix gemm(Trans ta, Trans tb, RealConstView a, RealConstView b) {
  const Index m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Index n = (tb == Trans::kNo) ? b.cols() : b.rows();
  RealMatrix c(m, n);
  gemm(ta, tb, Real{1}, a, b, Real{0}, c.view());
  return c;
}

RealMatrix gram(RealConstView a) {
  const Index n = a.cols();
  RealMatrix g(n, n);
  gemm(Trans::kYes, Trans::kNo, Real{1}, a, a, Real{0}, g.view());
  // Symmetrize to kill roundoff asymmetry from the blocked kernel.
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const Real avg = 0.5 * (g(i, j) + g(j, i));
      g(i, j) = avg;
      g(j, i) = avg;
    }
  }
  return g;
}

Real frobenius_norm(RealConstView a) {
  Real sum = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* r = a.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) sum += r[j] * r[j];
  }
  return std::sqrt(sum);
}

Real max_abs_diff(RealConstView a, RealConstView b) {
  LRT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "max_abs_diff shape mismatch");
  Real best = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* ra = a.row_ptr(i);
    const Real* rb = b.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(ra[j] - rb[j]));
    }
  }
  return best;
}

Real max_abs(RealConstView a) {
  Real best = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* r = a.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) best = std::max(best, std::abs(r[j]));
  }
  return best;
}

double gemm_flops(Index m, Index n, Index k) {
  return 2.0 * double(m) * double(n) * double(k);
}

}  // namespace lrt::la
