#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace lrt::la {
namespace {

/// Panel size along the reduction (k) dimension; keeps a B panel of
/// kKBlock rows hot in L2 while C rows are revisited.
constexpr Index kKBlock = 256;
/// Row-block size distributed across OpenMP threads.
constexpr Index kIBlock = 64;

/// Dimension product above which gemm spawns an OpenMP team.
constexpr double kParallelFlopThreshold = 1e6;

void gemm_nn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) >
          kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i0 = 0; i0 < m; i0 += kIBlock) {
    const Index i1 = std::min(i0 + kIBlock, m);
    for (Index k0 = 0; k0 < k; k0 += kKBlock) {
      const Index k1 = std::min(k0 + kKBlock, k);
      for (Index i = i0; i < i1; ++i) {
        Real* ci = c.row_ptr(i);
        const Real* ai = a.row_ptr(i);
        for (Index kk = k0; kk < k1; ++kk) {
          const Real aik = alpha * ai[kk];
          if (aik == Real{0}) continue;
          const Real* bk = b.row_ptr(kk);
          for (Index j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

void gemm_tn(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // C = Aᵀ B: C[i,:] += A[kk,i] * B[kk,:]
  const Index m = c.rows(), n = c.cols(), k = a.rows();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) >
          kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i0 = 0; i0 < m; i0 += kIBlock) {
    const Index i1 = std::min(i0 + kIBlock, m);
    for (Index k0 = 0; k0 < k; k0 += kKBlock) {
      const Index k1 = std::min(k0 + kKBlock, k);
      for (Index kk = k0; kk < k1; ++kk) {
        const Real* ak = a.row_ptr(kk);
        const Real* bk = b.row_ptr(kk);
        for (Index i = i0; i < i1; ++i) {
          const Real aki = alpha * ak[i];
          if (aki == Real{0}) continue;
          Real* ci = c.row_ptr(i);
          for (Index j = 0; j < n; ++j) ci[j] += aki * bk[j];
        }
      }
    }
  }
}

void gemm_nt(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // C[i,j] += dot(A[i,:], B[j,:]) — both rows contiguous.
  const Index m = c.rows(), n = c.cols(), k = a.cols();
  [[maybe_unused]] const bool parallel =
      2.0 * double(m) * double(n) * double(k) >
          kParallelFlopThreshold;
#pragma omp parallel for schedule(dynamic) if (parallel)
  for (Index i = 0; i < m; ++i) {
    const Real* ai = a.row_ptr(i);
    Real* ci = c.row_ptr(i);
    for (Index j = 0; j < n; ++j) {
      ci[j] += alpha * dot(ai, b.row_ptr(j), k);
    }
  }
}

void gemm_tt(Real alpha, RealConstView a, RealConstView b, RealView c) {
  // C = Aᵀ Bᵀ — rare; go through a transposed copy of A to reuse the
  // contiguous NT kernel: C[i,j] = dot(Aᵀ[i,:], Bᵀ[j,:]) is not contiguous
  // in B, so materialize Bᵀ instead and use TN ordering on it.
  const RealMatrix bt = transpose(b);
  gemm_tn(alpha, a, bt.view(), c);
}

}  // namespace

Real dot(const Real* x, const Real* y, Index n) {
  Real sum = 0.0;
  for (Index i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

Real nrm2(const Real* x, Index n) { return std::sqrt(dot(x, x, n)); }

void axpy(Real alpha, const Real* x, Real* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(Real alpha, Real* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

void gemv(Trans trans, Real alpha, RealConstView a, const Real* x, Real beta,
          Real* y) {
  if (trans == Trans::kNo) {
    const Index m = a.rows(), n = a.cols();
    for (Index i = 0; i < m; ++i) {
      y[i] = beta * y[i] + alpha * dot(a.row_ptr(i), x, n);
    }
  } else {
    const Index m = a.rows(), n = a.cols();
    for (Index j = 0; j < n; ++j) y[j] *= beta;
    for (Index i = 0; i < m; ++i) {
      const Real axi = alpha * x[i];
      if (axi == Real{0}) continue;
      axpy(axi, a.row_ptr(i), y, n);
    }
  }
}

void gemm(Trans ta, Trans tb, Real alpha, RealConstView a, RealConstView b,
          Real beta, RealView c) {
  const Index m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Index ka = (ta == Trans::kNo) ? a.cols() : a.rows();
  const Index kb = (tb == Trans::kNo) ? b.rows() : b.cols();
  const Index n = (tb == Trans::kNo) ? b.cols() : b.rows();
  LRT_CHECK(ka == kb, "gemm inner dimension mismatch: " << ka << " vs " << kb);
  LRT_CHECK(c.rows() == m && c.cols() == n,
            "gemm output shape mismatch: want " << m << "x" << n << ", got "
                                                << c.rows() << "x" << c.cols());
  if (beta == Real{0}) {
    c.fill(Real{0});
  } else if (beta != Real{1}) {
    for (Index i = 0; i < m; ++i) scal(beta, c.row_ptr(i), n);
  }
  if (m == 0 || n == 0 || ka == 0 || alpha == Real{0}) return;

  // No span here — gemm is called far too often for per-call trace
  // events; the FLOP counter gives the aggregate view instead.
  static obs::Counter& calls = obs::counter("la.gemm.calls");
  static obs::Counter& flops = obs::counter("la.gemm.flops");
  calls.add(1);
  flops.add(2ll * m * n * ka);

  if (ta == Trans::kNo && tb == Trans::kNo) {
    gemm_nn(alpha, a, b, c);
  } else if (ta == Trans::kYes && tb == Trans::kNo) {
    gemm_tn(alpha, a, b, c);
  } else if (ta == Trans::kNo && tb == Trans::kYes) {
    gemm_nt(alpha, a, b, c);
  } else {
    gemm_tt(alpha, a, b, c);
  }
}

RealMatrix gemm(Trans ta, Trans tb, RealConstView a, RealConstView b) {
  const Index m = (ta == Trans::kNo) ? a.rows() : a.cols();
  const Index n = (tb == Trans::kNo) ? b.cols() : b.rows();
  RealMatrix c(m, n);
  gemm(ta, tb, Real{1}, a, b, Real{0}, c.view());
  return c;
}

RealMatrix gram(RealConstView a) {
  const Index n = a.cols();
  RealMatrix g(n, n);
  gemm(Trans::kYes, Trans::kNo, Real{1}, a, a, Real{0}, g.view());
  // Symmetrize to kill roundoff asymmetry from the blocked kernel.
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      const Real avg = 0.5 * (g(i, j) + g(j, i));
      g(i, j) = avg;
      g(j, i) = avg;
    }
  }
  return g;
}

Real frobenius_norm(RealConstView a) {
  Real sum = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* r = a.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) sum += r[j] * r[j];
  }
  return std::sqrt(sum);
}

Real max_abs_diff(RealConstView a, RealConstView b) {
  LRT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "max_abs_diff shape mismatch");
  Real best = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* ra = a.row_ptr(i);
    const Real* rb = b.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) {
      best = std::max(best, std::abs(ra[j] - rb[j]));
    }
  }
  return best;
}

Real max_abs(RealConstView a) {
  Real best = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    const Real* r = a.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) best = std::max(best, std::abs(r[j]));
  }
  return best;
}

double gemm_flops(Index m, Index n, Index k) {
  return 2.0 * double(m) * double(n) * double(k);
}

}  // namespace lrt::la
