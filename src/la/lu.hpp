// LU factorization with partial pivoting and general linear solves.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

struct LuFactors {
  RealMatrix lu;             ///< packed L (unit diagonal) and U
  std::vector<Index> pivot;  ///< row swapped with i at step i
  int sign = 1;              ///< permutation parity (for determinants)
};

/// Factors a square matrix; throws on exact singularity.
LuFactors lu_factor(RealConstView a);

/// Solves A X = B in place on B given the factors.
void lu_solve(const LuFactors& f, RealView b);

/// One-call general solve.
RealMatrix solve(RealConstView a, RealConstView b);

/// Determinant via LU.
Real determinant(RealConstView a);

}  // namespace lrt::la
