// Symmetric (and generalized symmetric-definite) dense eigensolvers.
//
// syev reduces the matrix to tridiagonal form with Householder reflections
// and diagonalizes with the implicit-shift QL iteration (the classic
// tred2/tql2 pair, as in EISPACK/LAPACK steqr). This is the serial
// equivalent of the ScaLAPACK SYEVD call the paper's naive code uses.
//
// Eigenvalues are returned in ascending order; eigenvectors are the
// *columns* of `vectors`, matching x_k = vectors(:, k).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

struct EigResult {
  std::vector<Real> values;  ///< ascending eigenvalues
  RealMatrix vectors;        ///< orthonormal eigenvectors in columns
};

/// Full eigendecomposition of a symmetric matrix (symmetry is assumed; only
/// the lower triangle needs to be meaningful after symmetrization upstream).
EigResult syev(RealConstView a);

/// Eigenvalues only (same algorithm, no accumulation).
std::vector<Real> syev_values(RealConstView a);

/// Generalized problem A x = λ B x with SPD B, via Cholesky reduction.
EigResult sygv(RealConstView a, RealConstView b);

/// Residual max_k ||A x_k - λ_k x_k||_2 — test/diagnostic helper.
Real eig_residual(RealConstView a, const EigResult& result);

}  // namespace lrt::la
