#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/qr.hpp"

namespace lrt::la {
namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form
// with accumulated transformations. Ported from the Algol tred2 procedure
// (Bowdler, Martin, Reinsch, Wilkinson; Handbook for Automatic Computation)
// in its widely used C translation. On exit `v` holds the accumulated
// orthogonal matrix, `d` the diagonal and `e` the subdiagonal (e[0] = 0).
void tred2(RealMatrix& v, std::vector<Real>& d, std::vector<Real>& e) {
  const Index n = v.rows();
  for (Index j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (Index i = n - 1; i > 0; --i) {
    Real scale = 0.0;
    Real h = 0.0;
    for (Index k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (Index j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (Index k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      Real f = d[i - 1];
      Real g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (Index j = 0; j < i; ++j) e[j] = 0.0;

      for (Index j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (Index k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (Index j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const Real hh = f / (h + h);
      for (Index j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (Index j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (Index k = j; k <= i - 1; ++k) {
          v(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (Index i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const Real h = d[i + 1];
    if (h != 0.0) {
      for (Index k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (Index j = 0; j <= i; ++j) {
        Real g = 0.0;
        for (Index k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (Index k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (Index k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (Index j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal (d, e) with eigenvector
// accumulation into v. Ported from the Algol tql2 procedure.
void tql2(RealMatrix& v, std::vector<Real>& d, std::vector<Real>& e) {
  const Index n = v.rows();
  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  Real f = 0.0;
  Real tst1 = 0.0;
  const Real eps = std::numeric_limits<Real>::epsilon();

  for (Index l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    Index m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }

    if (m > l) {
      int iter = 0;
      do {
        ++iter;
        LRT_CHECK(iter <= 60, "tql2 failed to converge at eigenvalue " << l);

        Real g = d[l];
        Real p = (d[l + 1] - g) / (2.0 * e[l]);
        Real r = std::hypot(p, Real{1});
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const Real dl1 = d[l + 1];
        Real h = g - d[l];
        for (Index i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        Real c = 1.0;
        Real c2 = c;
        Real c3 = c;
        const Real el1 = e[l + 1];
        Real s = 0.0;
        Real s2 = 0.0;
        for (Index i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (Index k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector columns alongside.
  for (Index i = 0; i < n - 1; ++i) {
    Index k = i;
    Real p = d[i];
    for (Index j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (Index j = 0; j < n; ++j) std::swap(v(j, i), v(j, k));
    }
  }
}

RealMatrix symmetrized_copy(RealConstView a) {
  LRT_CHECK(a.rows() == a.cols(), "syev needs a square matrix");
  RealMatrix m(a.rows(), a.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j <= i; ++j) {
      const Real avg = 0.5 * (a(i, j) + a(j, i));
      m(i, j) = avg;
      m(j, i) = avg;
    }
  }
  return m;
}

}  // namespace

EigResult syev(RealConstView a) {
  EigResult result;
  const Index n = a.rows();
  result.values.assign(static_cast<std::size_t>(n), Real{0});
  result.vectors = symmetrized_copy(a);
  if (n == 0) return result;
  if (n == 1) {
    result.values[0] = a(0, 0);
    result.vectors(0, 0) = 1.0;
    return result;
  }
  std::vector<Real> e(static_cast<std::size_t>(n), Real{0});
  tred2(result.vectors, result.values, e);
  tql2(result.vectors, result.values, e);
  return result;
}

std::vector<Real> syev_values(RealConstView a) { return syev(a).values; }

EigResult sygv(RealConstView a, RealConstView b) {
  LRT_CHECK(a.rows() == a.cols() && b.rows() == b.cols() &&
                a.rows() == b.rows(),
            "sygv shape mismatch");
  // B = L Lᵀ, solve (L⁻¹ A L⁻ᵀ) y = λ y, then x = L⁻ᵀ y.
  const RealMatrix l = cholesky(b);
  RealMatrix atilde = symmetrized_copy(a);
  // atilde := L⁻¹ atilde
  solve_lower_triangular(l.view(), atilde.view());
  // atilde := atilde L⁻ᵀ, i.e. solve (L Xᵀ = atildeᵀ)ᵀ: transpose, solve,
  // transpose back.
  RealMatrix at = transpose<Real>(atilde.view());
  solve_lower_triangular(l.view(), at.view());
  atilde = transpose<Real>(at.view());

  EigResult result = syev(atilde.view());
  // Back-transform eigenvectors: x = L⁻ᵀ y.
  solve_lower_transposed(l.view(), result.vectors.view());
  return result;
}

Real eig_residual(RealConstView a, const EigResult& result) {
  const Index n = a.rows();
  const Index k = result.vectors.cols();
  RealMatrix ax = gemm(Trans::kNo, Trans::kNo, a, result.vectors.view());
  Real worst = 0.0;
  for (Index j = 0; j < k; ++j) {
    Real sum = 0.0;
    for (Index i = 0; i < n; ++i) {
      const Real r = ax(i, j) - result.values[static_cast<std::size_t>(j)] *
                                    result.vectors(i, j);
      sum += r * r;
    }
    worst = std::max(worst, std::sqrt(sum));
  }
  return worst;
}

}  // namespace lrt::la
