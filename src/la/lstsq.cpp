#include "la/lstsq.hpp"

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/qr.hpp"

namespace lrt::la {

RealMatrix lstsq_qr(RealConstView a, RealConstView b) {
  LRT_CHECK(a.rows() == b.rows(), "lstsq_qr row mismatch");
  LRT_CHECK(a.rows() >= a.cols(), "lstsq_qr needs m >= n");
  const QrFactors f = qr_factor(a);
  RealMatrix qtb = to_matrix(b);
  qr_apply_qt(f, qtb.view());
  const RealMatrix r = qr_form_r(f);
  RealView head = qtb.view().rows_block(0, a.cols());
  solve_upper_triangular(r.view(), head);
  return to_matrix<Real>(head);
}

RealMatrix solve_gram_from_right(RealConstView b, RealConstView gram_matrix,
                                 Real ridge) {
  LRT_CHECK(gram_matrix.rows() == gram_matrix.cols(),
            "gram matrix must be square");
  LRT_CHECK(b.cols() == gram_matrix.rows(), "shape mismatch");
  const Index n = gram_matrix.rows();

  RealMatrix g = to_matrix(gram_matrix);
  RealMatrix l;
  if (!try_cholesky(g.view(), l)) {
    // Tikhonov-regularize: the ISDF Gram matrix C Cᵀ can be numerically
    // rank-deficient when clusters collapse; a tiny ridge keeps the
    // least-squares solution stable without visibly moving Θ.
    Real trace = 0.0;
    for (Index i = 0; i < n; ++i) trace += g(i, i);
    const Real shift = ridge * (trace > Real{0} ? trace / Real(n) : Real{1});
    for (Index i = 0; i < n; ++i) g(i, i) += shift;
    l = cholesky(g.view());
  }
  // X G = B  =>  G Xᵀ = Bᵀ (G symmetric), solve and transpose back.
  RealMatrix xt = transpose(b);
  cholesky_solve(l.view(), xt.view());
  return transpose<Real>(xt.view());
}

}  // namespace lrt::la
