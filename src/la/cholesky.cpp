#include "la/cholesky.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/qr.hpp"

namespace lrt::la {
namespace {

bool factor_in_place(RealMatrix& a) {
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    Real diag = a(j, j);
    for (Index k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (!(diag > Real{0})) return false;
    const Real ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const Real inv = Real{1} / ljj;
    for (Index i = j + 1; i < n; ++i) {
      Real sum = a(i, j);
      for (Index k = 0; k < j; ++k) sum -= a(i, k) * a(j, k);
      a(i, j) = sum * inv;
    }
  }
  // Zero the strict upper triangle so the result is exactly L.
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) a(i, j) = Real{0};
  }
  return true;
}

}  // namespace

RealMatrix cholesky(RealConstView a) {
  LRT_CHECK(a.rows() == a.cols(), "cholesky needs a square matrix");
  RealMatrix l = to_matrix(a);
  LRT_CHECK(factor_in_place(l), "matrix is not positive definite");
  return l;
}

bool try_cholesky(RealConstView a, RealMatrix& l) {
  LRT_CHECK(a.rows() == a.cols(), "cholesky needs a square matrix");
  l = to_matrix(a);
  return factor_in_place(l);
}

void cholesky_solve(RealConstView l, RealView b) {
  solve_lower_triangular(l, b);
  solve_lower_transposed(l, b);
}

RealMatrix solve_spd(RealConstView a, RealConstView b) {
  const RealMatrix l = cholesky(a);
  RealMatrix x = to_matrix(b);
  cholesky_solve(l.view(), x.view());
  return x;
}

RealMatrix spd_inverse(RealConstView a) {
  const Index n = a.rows();
  return solve_spd(a, RealMatrix::identity(n).view());
}

}  // namespace lrt::la
