// Householder QR factorization (unpivoted).
//
// Factors are stored LAPACK-style: R in the upper triangle of `a`,
// Householder vectors below the diagonal with implicit unit leading entry,
// scalar factors in `tau`. H_j = I - tau_j v_j v_jᵀ and
// Q = H_0 H_1 ... H_{n-1}.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

struct QrFactors {
  RealMatrix a;            ///< packed R + Householder vectors (m x n)
  std::vector<Real> tau;   ///< n scalar reflector factors
};

/// Factor an m x n matrix, m >= n required.
QrFactors qr_factor(RealConstView a);

/// Forms the leading `ncols` columns of Q (m x ncols). ncols <= m.
RealMatrix qr_form_q(const QrFactors& f, Index ncols);

/// Extracts the n x n upper-triangular R.
RealMatrix qr_form_r(const QrFactors& f);

/// Applies Qᵀ in place to an m x k right-hand-side block: b := Qᵀ b.
void qr_apply_qt(const QrFactors& f, RealView b);

/// Applies Q in place: b := Q b.
void qr_apply_q(const QrFactors& f, RealView b);

/// Solves the n x n upper-triangular system R x = b in place on the
/// leading n rows of b (b has m >= n rows; trailing rows ignored).
void solve_upper_triangular(RealConstView r, RealView b);

/// Solves the lower-triangular system L x = b in place.
void solve_lower_triangular(RealConstView l, RealView b);

/// Solves Lᵀ x = b in place given lower-triangular L.
void solve_lower_transposed(RealConstView l, RealView b);

}  // namespace lrt::la
