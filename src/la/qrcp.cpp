#include "la/qrcp.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"

namespace lrt::la {
namespace {

/// Recomputation guard: when the downdated squared norm has lost this much
/// relative accuracy, recompute it from scratch (standard dgeqp3 safeguard).
constexpr Real kNormRecomputeTol = 1e-12;

Real column_norm_tail(RealConstView a, Index col, Index first_row) {
  Real sum = 0.0;
  for (Index i = first_row; i < a.rows(); ++i) sum += a(i, col) * a(i, col);
  return std::sqrt(sum);
}

}  // namespace

QrcpResult qrcp_factor(RealConstView input, const QrcpOptions& options) {
  QrcpResult result;
  result.a = to_matrix(input);
  RealView a = result.a.view();
  const Index m = a.rows();
  const Index n = a.cols();
  const Index max_steps =
      options.max_rank >= 0 ? std::min(options.max_rank, std::min(m, n))
                            : std::min(m, n);
  result.perm.resize(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) result.perm[static_cast<std::size_t>(j)] = j;
  result.tau.reserve(static_cast<std::size_t>(max_steps));
  result.rdiag.reserve(static_cast<std::size_t>(max_steps));

  // Running (downdated) column norms plus the reference norms used by the
  // recomputation guard.
  std::vector<Real> norms(static_cast<std::size_t>(n));
  std::vector<Real> ref_norms(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    norms[static_cast<std::size_t>(j)] = column_norm_tail(a, j, 0);
    ref_norms[static_cast<std::size_t>(j)] = norms[static_cast<std::size_t>(j)];
  }

  Real first_diag = 0.0;
  std::vector<Real> column(static_cast<std::size_t>(m));

  for (Index k = 0; k < max_steps; ++k) {
    // Pivot: bring the largest remaining column to position k.
    Index pivot = k;
    for (Index j = k + 1; j < n; ++j) {
      if (norms[static_cast<std::size_t>(j)] >
          norms[static_cast<std::size_t>(pivot)]) {
        pivot = j;
      }
    }
    if (pivot != k) {
      for (Index i = 0; i < m; ++i) std::swap(a(i, k), a(i, pivot));
      std::swap(norms[static_cast<std::size_t>(k)],
                norms[static_cast<std::size_t>(pivot)]);
      std::swap(ref_norms[static_cast<std::size_t>(k)],
                ref_norms[static_cast<std::size_t>(pivot)]);
      std::swap(result.perm[static_cast<std::size_t>(k)],
                result.perm[static_cast<std::size_t>(pivot)]);
    }

    // Householder step on column k.
    const Index len = m - k;
    for (Index i = 0; i < len; ++i) column[static_cast<std::size_t>(i)] = a(k + i, k);
    Real tau = 0.0;
    {
      // Inline reflector computation (same as qr.cpp's make_reflector).
      Real* x = column.data();
      if (len > 1) {
        const Real alpha = x[0];
        const Real xnorm = nrm2(x + 1, len - 1);
        if (xnorm != Real{0}) {
          const Real beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
          tau = (beta - alpha) / beta;
          const Real inv = Real{1} / (alpha - beta);
          for (Index i = 1; i < len; ++i) x[i] *= inv;
          x[0] = beta;
        }
      }
    }
    for (Index i = 0; i < len; ++i) a(k + i, k) = column[static_cast<std::size_t>(i)];
    result.tau.push_back(tau);

    const Real diag = std::abs(a(k, k));
    if (k == 0) first_diag = diag;
    // Threshold truncation (paper: stop when the (Nmu+1)-th diagonal falls
    // under the tolerance).
    if (options.rel_threshold > 0.0 && k > 0 &&
        diag < options.rel_threshold * first_diag) {
      result.tau.pop_back();
      break;
    }
    result.rdiag.push_back(diag);
    result.rank = k + 1;

    // Apply the reflector to the trailing columns and downdate norms.
    if (tau != Real{0}) {
      for (Index j = k + 1; j < n; ++j) {
        Real w = a(k, j);
        for (Index i = k + 1; i < m; ++i) w += a(i, k) * a(i, j);
        w *= tau;
        a(k, j) -= w;
        for (Index i = k + 1; i < m; ++i) a(i, j) -= w * a(i, k);
      }
    }
    for (Index j = k + 1; j < n; ++j) {
      Real& nj = norms[static_cast<std::size_t>(j)];
      if (nj == Real{0}) continue;
      const Real t = std::abs(a(k, j)) / nj;
      const Real factor = std::max(Real{0}, (Real{1} - t) * (Real{1} + t));
      const Real scaled = nj * std::sqrt(factor);
      const Real ref = ref_norms[static_cast<std::size_t>(j)];
      if (ref > Real{0} && (scaled / ref) * (scaled / ref) < kNormRecomputeTol) {
        nj = column_norm_tail(a, j, k + 1);
        ref_norms[static_cast<std::size_t>(j)] = nj;
      } else {
        nj = scaled;
      }
    }
  }
  return result;
}

std::vector<Index> qrcp_pivots(const QrcpResult& result, Index count) {
  LRT_CHECK(count >= 0 && count <= result.rank,
            "requested " << count << " pivots, rank is " << result.rank);
  return std::vector<Index>(result.perm.begin(), result.perm.begin() + count);
}

}  // namespace lrt::la
