// Explicit instantiations for the matrix templates used across the library.
// Keeps one translation unit responsible for emitting the common symbols.
#include "la/matrix.hpp"

namespace lrt::la {

template class Matrix<Real>;
template class Matrix<std::complex<Real>>;
template class MatrixView<Real>;
template class ConstMatrixView<Real>;

}  // namespace lrt::la
