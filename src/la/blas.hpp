// Dense BLAS-style kernels (levels 1-3) on row-major views.
//
// These stand in for the MKL calls the paper's implementation makes.
// gemm runs a packed, register-tiled micro-kernel (BLIS-style blocking,
// OpenMP-threaded, SIMD via runtime ISA dispatch) above a small flop
// threshold and a branch-free scalar fallback below it; the pre-packing
// blocked kernel survives as gemm_reference for tests and the
// `bench_micro_substrates --compare` baseline. See docs/PERFORMANCE.md.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

enum class Trans { kNo, kYes };

// ----- level 1 ------------------------------------------------------------

/// <x, y> over n contiguous elements.
Real dot(const Real* x, const Real* y, Index n);

/// Euclidean norm of n contiguous elements (no overflow guard; values in
/// this library are O(1) by construction).
Real nrm2(const Real* x, Index n);

/// y += alpha * x.
void axpy(Real alpha, const Real* x, Real* y, Index n);

/// x *= alpha.
void scal(Real alpha, Real* x, Index n);

// ----- level 2 ------------------------------------------------------------

/// y = alpha * op(A) * x + beta * y.
void gemv(Trans trans, Real alpha, RealConstView a, const Real* x, Real beta,
          Real* y);

// ----- level 3 ------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C.
void gemm(Trans ta, Trans tb, Real alpha, RealConstView a, RealConstView b,
          Real beta, RealView c);

/// Convenience: returns op(A) * op(B).
RealMatrix gemm(Trans ta, Trans tb, RealConstView a, RealConstView b);

/// The pre-micro-kernel blocked scalar gemm, preserved as a comparison
/// baseline (tests, bench --compare). Same contract as gemm().
void gemm_reference(Trans ta, Trans tb, Real alpha, RealConstView a,
                    RealConstView b, Real beta, RealView c);

/// One (A_i, C_i) pair of a gemm_many batch; every item shares op(B).
struct GemmBatchItem {
  RealConstView a;
  RealView c;
};

/// C_i = alpha * op(A_i) * op(B) + beta * C_i for every item. op(B) is
/// packed once per cache block and all A panels stream through the packed
/// micro-kernel, amortizing the packing cost that sends individually
/// small gemm calls to the scalar fallback. Always takes the packed path;
/// each item's result is bitwise identical to a packed gemm() of the same
/// shapes (identical blocking, packing, and accumulation order).
void gemm_many(Trans ta, Trans tb, Real alpha,
               const std::vector<GemmBatchItem>& items, RealConstView b,
               Real beta);

/// Gram matrix Aᵀ A (n x n for an m x n input); exploits symmetry.
RealMatrix gram(RealConstView a);

// ----- norms / comparisons -------------------------------------------------

Real frobenius_norm(RealConstView a);

/// max_ij |a_ij - b_ij|; shapes must match.
Real max_abs_diff(RealConstView a, RealConstView b);

/// max_ij |a_ij|.
Real max_abs(RealConstView a);

/// Number of flops of a gemm with these shapes (2 m n k), for bench reports.
double gemm_flops(Index m, Index n, Index k);

}  // namespace lrt::la
