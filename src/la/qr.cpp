#include "la/qr.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace lrt::la {
namespace {

/// Computes a Householder reflector for the column x (length len) such that
/// (I - tau v vᵀ) x = (beta, 0, ..., 0)ᵀ with v(0) = 1.
/// On exit x[0] = beta and x[1:] = v[1:]. Returns tau (0 if x is already
/// collinear with e1).
Real make_reflector(Real* x, Index len) {
  if (len <= 1) return Real{0};
  const Real alpha = x[0];
  const Real xnorm = nrm2(x + 1, len - 1);
  if (xnorm == Real{0}) return Real{0};
  Real beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const Real tau = (beta - alpha) / beta;
  const Real inv = Real{1} / (alpha - beta);
  for (Index i = 1; i < len; ++i) x[i] *= inv;
  x[0] = beta;
  return tau;
}

/// Applies H = I - tau v vᵀ (v packed in column `col` of `a`, rows
/// [col..m), implicit leading 1) to columns [c0, c1) of `a`.
void apply_reflector_to_block(RealView a, Index col, Real tau, Index c0,
                              Index c1) {
  if (tau == Real{0}) return;
  const Index m = a.rows();
  for (Index j = c0; j < c1; ++j) {
    // w = vᵀ a(:, j)
    Real w = a(col, j);
    for (Index i = col + 1; i < m; ++i) w += a(i, col) * a(i, j);
    w *= tau;
    a(col, j) -= w;
    for (Index i = col + 1; i < m; ++i) a(i, j) -= w * a(i, col);
  }
}

}  // namespace

QrFactors qr_factor(RealConstView a) {
  LRT_CHECK(a.rows() >= a.cols(),
            "qr_factor requires m >= n, got " << a.rows() << "x" << a.cols());
  QrFactors f;
  f.a = to_matrix(a);
  const Index n = a.cols();
  f.tau.assign(static_cast<std::size_t>(n), Real{0});
  RealView packed = f.a.view();
  const Index m = a.rows();

  std::vector<Real> column(static_cast<std::size_t>(m));
  for (Index k = 0; k < n; ++k) {
    const Index len = m - k;
    for (Index i = 0; i < len; ++i) column[i] = packed(k + i, k);
    const Real tau = make_reflector(column.data(), len);
    for (Index i = 0; i < len; ++i) packed(k + i, k) = column[i];
    f.tau[static_cast<std::size_t>(k)] = tau;
    apply_reflector_to_block(packed, k, tau, k + 1, n);
  }
  return f;
}

RealMatrix qr_form_q(const QrFactors& f, Index ncols) {
  const Index m = f.a.rows();
  const Index n = f.a.cols();
  LRT_CHECK(ncols >= 0 && ncols <= m, "ncols out of range");
  RealMatrix q(m, ncols);
  for (Index j = 0; j < std::min(ncols, m); ++j) q(j, j) = Real{1};
  // Q = H_0 ... H_{n-1}; apply reflectors in reverse to the identity.
  for (Index k = n - 1; k >= 0; --k) {
    const Real tau = f.tau[static_cast<std::size_t>(k)];
    if (tau == Real{0}) continue;
    RealView qv = q.view();
    for (Index j = 0; j < ncols; ++j) {
      Real w = qv(k, j);
      for (Index i = k + 1; i < m; ++i) w += f.a(i, k) * qv(i, j);
      w *= tau;
      qv(k, j) -= w;
      for (Index i = k + 1; i < m; ++i) qv(i, j) -= w * f.a(i, k);
    }
  }
  return q;
}

RealMatrix qr_form_r(const QrFactors& f) {
  const Index n = f.a.cols();
  RealMatrix r(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = i; j < n; ++j) r(i, j) = f.a(i, j);
  }
  return r;
}

void qr_apply_qt(const QrFactors& f, RealView b) {
  LRT_CHECK(b.rows() == f.a.rows(), "qr_apply_qt row mismatch");
  const Index m = f.a.rows();
  const Index n = f.a.cols();
  const Index k = b.cols();
  // Qᵀ = H_{n-1} ... H_0.
  for (Index col = 0; col < n; ++col) {
    const Real tau = f.tau[static_cast<std::size_t>(col)];
    if (tau == Real{0}) continue;
    for (Index j = 0; j < k; ++j) {
      Real w = b(col, j);
      for (Index i = col + 1; i < m; ++i) w += f.a(i, col) * b(i, j);
      w *= tau;
      b(col, j) -= w;
      for (Index i = col + 1; i < m; ++i) b(i, j) -= w * f.a(i, col);
    }
  }
}

void qr_apply_q(const QrFactors& f, RealView b) {
  LRT_CHECK(b.rows() == f.a.rows(), "qr_apply_q row mismatch");
  const Index m = f.a.rows();
  const Index n = f.a.cols();
  const Index k = b.cols();
  for (Index col = n - 1; col >= 0; --col) {
    const Real tau = f.tau[static_cast<std::size_t>(col)];
    if (tau == Real{0}) continue;
    for (Index j = 0; j < k; ++j) {
      Real w = b(col, j);
      for (Index i = col + 1; i < m; ++i) w += f.a(i, col) * b(i, j);
      w *= tau;
      b(col, j) -= w;
      for (Index i = col + 1; i < m; ++i) b(i, j) -= w * f.a(i, col);
    }
  }
}

void solve_upper_triangular(RealConstView r, RealView b) {
  const Index n = r.cols();
  LRT_CHECK(r.rows() >= n, "triangular matrix too short");
  LRT_CHECK(b.rows() >= n, "rhs too short");
  const Index k = b.cols();
  for (Index i = n - 1; i >= 0; --i) {
    const Real rii = r(i, i);
    LRT_CHECK(std::abs(rii) > Real{0}, "singular triangular factor at " << i);
    for (Index j = 0; j < k; ++j) {
      Real sum = b(i, j);
      for (Index l = i + 1; l < n; ++l) sum -= r(i, l) * b(l, j);
      b(i, j) = sum / rii;
    }
  }
}

void solve_lower_triangular(RealConstView l, RealView b) {
  const Index n = l.cols();
  LRT_CHECK(l.rows() >= n && b.rows() >= n, "shape mismatch");
  const Index k = b.cols();
  for (Index i = 0; i < n; ++i) {
    const Real lii = l(i, i);
    LRT_CHECK(std::abs(lii) > Real{0}, "singular triangular factor at " << i);
    for (Index j = 0; j < k; ++j) {
      Real sum = b(i, j);
      for (Index p = 0; p < i; ++p) sum -= l(i, p) * b(p, j);
      b(i, j) = sum / lii;
    }
  }
}

void solve_lower_transposed(RealConstView l, RealView b) {
  const Index n = l.cols();
  LRT_CHECK(l.rows() >= n && b.rows() >= n, "shape mismatch");
  const Index k = b.cols();
  for (Index i = n - 1; i >= 0; --i) {
    const Real lii = l(i, i);
    LRT_CHECK(std::abs(lii) > Real{0}, "singular triangular factor at " << i);
    for (Index j = 0; j < k; ++j) {
      Real sum = b(i, j);
      for (Index p = i + 1; p < n; ++p) sum -= l(p, i) * b(p, j);
      b(i, j) = sum / lii;
    }
  }
}

}  // namespace lrt::la
