// QR factorization with column pivoting (QRCP), LAPACK dgeqp3-style.
//
// This is the traditional interpolation-point selector for ISDF (paper
// §4.1.1): pivot columns by largest remaining norm, stop when the next
// diagonal of R drops below a relative threshold. The pivot order ranks
// columns (grid points, after transposing the pair-product matrix) by how
// much new information they carry.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

struct QrcpResult {
  RealMatrix a;              ///< packed R + reflectors after pivoting
  std::vector<Real> tau;     ///< reflector scalars (length = factored steps)
  std::vector<Index> perm;   ///< perm[k] = original index of k-th pivot column
  std::vector<Real> rdiag;   ///< |R(k,k)| for each completed step
  Index rank = 0;            ///< steps completed before truncation
};

struct QrcpOptions {
  /// Stop when |R(k,k)| < rel_threshold * |R(0,0)|. 0 disables.
  Real rel_threshold = 0.0;
  /// Stop after max_rank steps. -1 means min(m, n).
  Index max_rank = -1;
};

/// Column-pivoted Householder QR of an m x n matrix (any aspect ratio).
QrcpResult qrcp_factor(RealConstView a, const QrcpOptions& options = {});

/// Convenience: the first `count` pivot column indices (count <= rank).
std::vector<Index> qrcp_pivots(const QrcpResult& result, Index count);

}  // namespace lrt::la
