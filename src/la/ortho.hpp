// Orthonormalization of tall-skinny column blocks.
//
// LOBPCG (both ground-state and LR-TDDFT) repeatedly orthonormalizes the
// columns of its search subspace. CholQR is the cheap path (one Gram
// matrix + Cholesky + triangular solve); when the block is ill-conditioned
// Cholesky fails and we fall back to Householder QR. cholqr2 runs CholQR
// twice, which restores full orthogonality to machine precision.
#pragma once

#include "la/matrix.hpp"

namespace lrt::la {

/// Orthonormalizes the columns of `a` in place (m x n, m >= n).
/// Returns false if the fallback QR path had to be taken.
bool cholqr(RealView a);

/// CholQR applied twice — orthogonality at machine precision even for
/// moderately ill-conditioned input blocks.
void cholqr2(RealView a);

/// Householder-QR based orthonormalization (robust path).
void ortho_qr(RealView a);

/// Max |QᵀQ - I| — orthogonality diagnostic used by tests.
Real orthogonality_error(RealConstView q);

/// Projects the columns of `x` against the orthonormal columns of `q`:
/// x := x - q (qᵀ x).
void project_out(RealConstView q, RealView x);

}  // namespace lrt::la
