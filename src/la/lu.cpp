#include "la/lu.hpp"

#include <cmath>

namespace lrt::la {

LuFactors lu_factor(RealConstView a) {
  LRT_CHECK(a.rows() == a.cols(), "lu_factor needs a square matrix");
  LuFactors f;
  f.lu = to_matrix(a);
  const Index n = a.rows();
  f.pivot.resize(static_cast<std::size_t>(n));
  RealMatrix& lu = f.lu;

  for (Index k = 0; k < n; ++k) {
    Index pivot = k;
    Real best = std::abs(lu(k, k));
    for (Index i = k + 1; i < n; ++i) {
      const Real v = std::abs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    LRT_CHECK(best > Real{0}, "matrix is singular at column " << k);
    f.pivot[static_cast<std::size_t>(k)] = pivot;
    if (pivot != k) {
      for (Index j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      f.sign = -f.sign;
    }
    const Real inv = Real{1} / lu(k, k);
    for (Index i = k + 1; i < n; ++i) {
      const Real lik = lu(i, k) * inv;
      lu(i, k) = lik;
      if (lik == Real{0}) continue;
      for (Index j = k + 1; j < n; ++j) lu(i, j) -= lik * lu(k, j);
    }
  }
  return f;
}

void lu_solve(const LuFactors& f, RealView b) {
  const Index n = f.lu.rows();
  LRT_CHECK(b.rows() == n, "lu_solve rhs row mismatch");
  const Index k = b.cols();
  // Apply row permutation.
  for (Index i = 0; i < n; ++i) {
    const Index p = f.pivot[static_cast<std::size_t>(i)];
    if (p != i) {
      for (Index j = 0; j < k; ++j) std::swap(b(i, j), b(p, j));
    }
  }
  // Forward substitution with unit-diagonal L.
  for (Index i = 1; i < n; ++i) {
    for (Index j = 0; j < k; ++j) {
      Real sum = b(i, j);
      for (Index p = 0; p < i; ++p) sum -= f.lu(i, p) * b(p, j);
      b(i, j) = sum;
    }
  }
  // Back substitution with U.
  for (Index i = n - 1; i >= 0; --i) {
    const Real uii = f.lu(i, i);
    for (Index j = 0; j < k; ++j) {
      Real sum = b(i, j);
      for (Index p = i + 1; p < n; ++p) sum -= f.lu(i, p) * b(p, j);
      b(i, j) = sum / uii;
    }
  }
}

RealMatrix solve(RealConstView a, RealConstView b) {
  const LuFactors f = lu_factor(a);
  RealMatrix x = to_matrix(b);
  lu_solve(f, x.view());
  return x;
}

Real determinant(RealConstView a) {
  const LuFactors f = lu_factor(a);
  Real det = static_cast<Real>(f.sign);
  for (Index i = 0; i < f.lu.rows(); ++i) det *= f.lu(i, i);
  return det;
}

}  // namespace lrt::la
