#include "la/ortho.hpp"

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/qr.hpp"

namespace lrt::la {

bool cholqr(RealView a) {
  const RealMatrix g = gram(a);
  RealMatrix l;
  if (!try_cholesky(g.view(), l)) {
    ortho_qr(a);
    return false;
  }
  // a := a L⁻ᵀ  (solve Lᵀ row-wise from the right: for each row r of a,
  // solve L x = rᵀ? No — columns: a L⁻ᵀ means aᵀ := L⁻¹ aᵀ).
  RealMatrix at = transpose<Real>(a);
  solve_lower_triangular(l.view(), at.view());
  const RealMatrix result = transpose<Real>(at.view());
  copy(result.view(), a);
  return true;
}

void cholqr2(RealView a) {
  cholqr(a);
  cholqr(a);
}

void ortho_qr(RealView a) {
  const QrFactors f = qr_factor(a);
  const RealMatrix q = qr_form_q(f, a.cols());
  copy(q.view(), a);
}

Real orthogonality_error(RealConstView q) {
  const RealMatrix g = gram(q);
  Real worst = 0.0;
  for (Index i = 0; i < g.rows(); ++i) {
    for (Index j = 0; j < g.cols(); ++j) {
      const Real target = (i == j) ? Real{1} : Real{0};
      worst = std::max(worst, std::abs(g(i, j) - target));
    }
  }
  return worst;
}

void project_out(RealConstView q, RealView x) {
  if (q.cols() == 0 || x.cols() == 0) return;
  LRT_CHECK(q.rows() == x.rows(), "project_out row mismatch");
  const RealMatrix coeff = gemm(Trans::kYes, Trans::kNo, q, x);
  gemm(Trans::kNo, Trans::kNo, Real{-1}, q, coeff.view(), Real{1}, x);
}

}  // namespace lrt::la
