// Locally Optimal Block Preconditioned Conjugate Gradient (LOBPCG).
//
// Generic blocked eigensolver for the lowest k eigenpairs of a symmetric
// operator given only as a block apply Y = H X. Used twice in this
// library, matching the paper:
//  - ground-state Kohn-Sham bands (dft/lobpcg_gs) with a kinetic-energy
//    preconditioner, and
//  - the LR-TDDFT Casida problem (tddft/lobpcg_tddft, paper Algorithm 2)
//    with the orbital-energy-gap preconditioner of Eq (17), where H is the
//    *implicitly factored* ISDF Hamiltonian.
//
// The iteration keeps the subspace S = [X, W, P] (current block,
// preconditioned residuals, previous search directions), solves the
// 3k x 3k projected problem Hs C = Θ Gs C (paper Eq 15-18), and never
// re-applies H to X or P — their images are updated by the same linear
// combinations, so each iteration costs exactly one block apply.
#pragma once

#include <functional>
#include <vector>

#include "la/matrix.hpp"

namespace lrt::la {

/// Complete iteration state of a (distributed: per-rank row slab of a)
/// LOBPCG run, snapshotted at the end of an iteration. The maintained
/// images HX / HP are linear-combination updates, not recomputable
/// bitwise from X and P alone, so they are part of the state: restoring a
/// snapshot and running the remaining iterations is bit-identical to
/// never having stopped (docs/RESILIENCE.md). Serialized to the lrt.ckpt/1
/// format by ft::save_lobpcg / ft::load_lobpcg.
struct LobpcgCheckpoint {
  RealMatrix x;   ///< current block (n x k, orthonormal columns)
  RealMatrix hx;  ///< maintained image H X
  RealMatrix p;   ///< previous search directions (may be 0 x 0)
  RealMatrix hp;  ///< maintained image H P
  std::vector<Real> eigenvalues;
  std::vector<Real> previous_values;  ///< for the value_tolerance test
  std::vector<Real> residual_norms;   ///< informational (recomputed on resume)
  Index iteration = 0;  ///< iterations completed when the snapshot was taken
};

struct LobpcgOptions {
  Index max_iterations = 200;
  /// Convergence: ||H x - θ x|| <= tolerance * max(1, |θ|) per column.
  Real tolerance = 1e-6;
  /// Stop early when the Ritz values move less than this between
  /// iterations (0 disables).
  Real value_tolerance = 0.0;
  /// Checkpoint/restart (docs/RESILIENCE.md): every `checkpoint_interval`
  /// completed iterations the solver hands a snapshot to
  /// `checkpoint_sink` (0 disables). `restore` resumes from a snapshot,
  /// skipping the initial orthonormalization and Rayleigh-Ritz. Plain
  /// std::function + value types so la stays below ft in the layer DAG;
  /// file serialization lives in ft/checkpoint.hpp.
  Index checkpoint_interval = 0;
  std::function<void(const LobpcgCheckpoint&)> checkpoint_sink;
  const LobpcgCheckpoint* restore = nullptr;
};

struct LobpcgResult {
  std::vector<Real> eigenvalues;   ///< ascending, size k
  RealMatrix eigenvectors;         ///< n x k, orthonormal columns
  Index iterations = 0;
  bool converged = false;
  std::vector<Real> residual_norms;  ///< per eigenpair at exit
};

/// Block operator: writes H * x into y (both n x k column blocks).
using BlockOperator = std::function<void(RealConstView x, RealView y)>;

/// In-place preconditioner on the residual block; `theta` holds the
/// current Ritz values (one per column).
using BlockPreconditioner =
    std::function<void(RealView r, const std::vector<Real>& theta)>;

/// Computes the lowest x0.cols() eigenpairs. `x0` provides the initial
/// guess (need not be orthonormal); pass an empty preconditioner for
/// unpreconditioned iteration.
LobpcgResult lobpcg(const BlockOperator& apply_h,
                    const BlockPreconditioner& preconditioner, RealMatrix x0,
                    const LobpcgOptions& options = {});

}  // namespace lrt::la
