// Cholesky factorization and SPD solves.
#pragma once

#include "la/matrix.hpp"

namespace lrt::la {

/// Factors a symmetric positive-definite matrix A = L Lᵀ. Returns the
/// lower-triangular L (strict upper part zeroed). Throws lrt::Error if a
/// non-positive pivot is met.
RealMatrix cholesky(RealConstView a);

/// Like cholesky() but returns false instead of throwing when the matrix
/// is not numerically positive definite; `l` is left unspecified then.
bool try_cholesky(RealConstView a, RealMatrix& l);

/// Solves A X = B given L from cholesky(A); B is overwritten with X.
void cholesky_solve(RealConstView l, RealView b);

/// One-call SPD solve: returns X with A X = B.
RealMatrix solve_spd(RealConstView a, RealConstView b);

/// Inverse of an SPD matrix via Cholesky (used for small Nμ x Nμ systems).
RealMatrix spd_inverse(RealConstView a);

}  // namespace lrt::la
