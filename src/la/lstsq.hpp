// Least-squares solvers.
//
// The ISDF interpolation vectors solve the overdetermined Galerkin system
// Θ = Z Cᵀ (C Cᵀ)⁻¹ (paper Eq 10). That normal-equations form is exposed
// directly (solve_normal_equations); a QR-based solver is provided for
// well-conditioned general problems and as the robust fallback.
#pragma once

#include "la/matrix.hpp"

namespace lrt::la {

/// Minimizes ||A X - B||_F via Householder QR (A is m x n, m >= n).
RealMatrix lstsq_qr(RealConstView a, RealConstView b);

/// Solves X (C Cᵀ) = B for X given C (i.e. X = B (C Cᵀ)⁻¹), regularizing
/// the Gram matrix with `ridge` * trace/n * I when Cholesky fails.
/// This matches the ISDF Eq (10) right-multiplication structure.
RealMatrix solve_gram_from_right(RealConstView b, RealConstView gram_matrix,
                                 Real ridge = 1e-12);

}  // namespace lrt::la
