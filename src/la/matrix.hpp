// Dense matrix storage and views.
//
// Matrix<T> is an owning, row-major dense matrix. MatrixView/ConstMatrixView
// are non-owning windows with an explicit leading dimension (row stride),
// so blocked algorithms (QR panels, GEMM tiles, LOBPCG sub-blocks) can
// operate in place without copies. All kernels in la/ take views; Matrix
// converts implicitly.
//
// Conventions
//  - row-major: element (i, j) lives at data[i * ld + j].
//  - Index is signed; dimensions must be >= 0.
//  - Real specializations get convenience aliases RealMatrix etc.
#pragma once

#include <complex>
#include <initializer_list>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/random.hpp"

namespace lrt::la {

template <typename T>
class Matrix;

/// Non-owning mutable window into a row-major matrix.
template <typename T>
class MatrixView {
 public:
  MatrixView() : data_(nullptr), rows_(0), cols_(0), ld_(0) {}

  MatrixView(T* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    LRT_ASSERT(rows >= 0 && cols >= 0 && ld >= cols,
               "bad view: " << rows << "x" << cols << " ld=" << ld);
  }

  MatrixView(Matrix<T>& m);  // NOLINT(google-explicit-constructor)

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return ld_; }
  T* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T& operator()(Index i, Index j) const {
    LRT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "index (" << i << "," << j << ") out of " << rows_ << "x"
                         << cols_);
    return data_[i * ld_ + j];
  }

  T* row_ptr(Index i) const { return data_ + i * ld_; }

  /// Sub-window rows [r0, r0+nr), cols [c0, c0+nc).
  MatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    LRT_ASSERT(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 && r0 + nr <= rows_ &&
                   c0 + nc <= cols_,
               "block out of range");
    return MatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

  MatrixView rows_block(Index r0, Index nr) const {
    return block(r0, 0, nr, cols_);
  }
  MatrixView cols_block(Index c0, Index nc) const {
    return block(0, c0, rows_, nc);
  }

  void fill(const T& value) const {
    for (Index i = 0; i < rows_; ++i) {
      T* r = row_ptr(i);
      for (Index j = 0; j < cols_; ++j) r[j] = value;
    }
  }

 private:
  T* data_;
  Index rows_, cols_, ld_;
};

/// Non-owning read-only window.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() : data_(nullptr), rows_(0), cols_(0), ld_(0) {}

  ConstMatrixView(const T* data, Index rows, Index cols, Index ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    LRT_ASSERT(rows >= 0 && cols >= 0 && ld >= cols,
               "bad view: " << rows << "x" << cols << " ld=" << ld);
  }

  ConstMatrixView(const Matrix<T>& m);  // NOLINT(google-explicit-constructor)
  ConstMatrixView(MatrixView<T> v)      // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return ld_; }
  const T* data() const { return data_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const T& operator()(Index i, Index j) const {
    LRT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "index (" << i << "," << j << ") out of " << rows_ << "x"
                         << cols_);
    return data_[i * ld_ + j];
  }

  const T* row_ptr(Index i) const { return data_ + i * ld_; }

  ConstMatrixView block(Index r0, Index c0, Index nr, Index nc) const {
    LRT_ASSERT(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 && r0 + nr <= rows_ &&
                   c0 + nc <= cols_,
               "block out of range");
    return ConstMatrixView(data_ + r0 * ld_ + c0, nr, nc, ld_);
  }

  ConstMatrixView rows_block(Index r0, Index nr) const {
    return block(r0, 0, nr, cols_);
  }
  ConstMatrixView cols_block(Index c0, Index nc) const {
    return block(0, c0, rows_, nc);
  }

 private:
  const T* data_;
  Index rows_, cols_, ld_;
};

/// Owning row-major dense matrix.
template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), T{}) {}

  Matrix(Index rows, Index cols, const T& value)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), value) {}

  /// Row-major initializer: Matrix<double>({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = static_cast<Index>(rows.size());
    cols_ = rows_ ? static_cast<Index>(rows.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_ * cols_));
    for (const auto& r : rows) {
      LRT_CHECK(static_cast<Index>(r.size()) == cols_,
                "ragged initializer list");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index ld() const { return cols_; }
  Index size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(Index i, Index j) {
    LRT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "index (" << i << "," << j << ") out of " << rows_ << "x"
                         << cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(Index i, Index j) const {
    LRT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "index (" << i << "," << j << ") out of " << rows_ << "x"
                         << cols_);
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  T* row_ptr(Index i) { return data() + i * cols_; }
  const T* row_ptr(Index i) const { return data() + i * cols_; }

  MatrixView<T> view() { return MatrixView<T>(data(), rows_, cols_, cols_); }
  ConstMatrixView<T> view() const {
    return ConstMatrixView<T>(data(), rows_, cols_, cols_);
  }

  MatrixView<T> block(Index r0, Index c0, Index nr, Index nc) {
    return view().block(r0, c0, nr, nc);
  }
  ConstMatrixView<T> block(Index r0, Index c0, Index nr, Index nc) const {
    return view().block(r0, c0, nr, nc);
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(Index rows, Index cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(checked_size(rows, cols), T{});
  }

  static Matrix zeros(Index rows, Index cols) { return Matrix(rows, cols); }

  static Matrix identity(Index n) {
    Matrix m(n, n);
    for (Index i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  /// Matrix with i.i.d. uniform(-1,1) entries (deterministic given rng).
  static Matrix random_uniform(Index rows, Index cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = static_cast<T>(rng.uniform(-1.0, 1.0));
    return m;
  }

  /// Matrix with i.i.d. standard normal entries.
  static Matrix random_normal(Index rows, Index cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = static_cast<T>(rng.normal());
    return m;
  }

 private:
  static std::size_t checked_size(Index rows, Index cols) {
    LRT_CHECK(rows >= 0 && cols >= 0,
              "negative matrix dimensions " << rows << "x" << cols);
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  Index rows_, cols_;
  std::vector<T> data_;
};

template <typename T>
MatrixView<T>::MatrixView(Matrix<T>& m)
    : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.cols()) {}

template <typename T>
ConstMatrixView<T>::ConstMatrixView(const Matrix<T>& m)
    : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.cols()) {}

using RealMatrix = Matrix<Real>;
using ComplexMatrix = Matrix<std::complex<Real>>;
using RealView = MatrixView<Real>;
using RealConstView = ConstMatrixView<Real>;
using ComplexView = MatrixView<std::complex<Real>>;
using ComplexConstView = ConstMatrixView<std::complex<Real>>;

/// Deep copy of an arbitrary (possibly strided) view into a fresh Matrix.
template <typename T>
Matrix<T> to_matrix(ConstMatrixView<T> v) {
  Matrix<T> m(v.rows(), v.cols());
  for (Index i = 0; i < v.rows(); ++i) {
    const T* src = v.row_ptr(i);
    T* dst = m.row_ptr(i);
    for (Index j = 0; j < v.cols(); ++j) dst[j] = src[j];
  }
  return m;
}

/// Copies src into dst (dimensions must match; strides may differ).
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  LRT_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
            "copy shape mismatch: " << src.rows() << "x" << src.cols()
                                    << " vs " << dst.rows() << "x"
                                    << dst.cols());
  for (Index i = 0; i < src.rows(); ++i) {
    const T* s = src.row_ptr(i);
    T* d = dst.row_ptr(i);
    for (Index j = 0; j < src.cols(); ++j) d[j] = s[j];
  }
}

/// Transpose into a fresh matrix.
template <typename T>
Matrix<T> transpose(ConstMatrixView<T> a) {
  Matrix<T> t(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    const T* src = a.row_ptr(i);
    for (Index j = 0; j < a.cols(); ++j) t(j, i) = src[j];
  }
  return t;
}

}  // namespace lrt::la
