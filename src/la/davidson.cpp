#include "la/davidson.hpp"

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/ortho.hpp"

namespace lrt::la {

DavidsonResult davidson(const BlockOperator& apply_h,
                        const BlockPreconditioner& preconditioner,
                        RealMatrix x0, const DavidsonOptions& options) {
  const Index n = x0.rows();
  const Index k = x0.cols();
  LRT_CHECK(n > 0 && k > 0, "davidson: empty initial block");
  const Index max_subspace =
      options.max_subspace > 0
          ? std::min(options.max_subspace, n)
          : std::min<Index>(8 * k, n);
  LRT_CHECK(max_subspace >= 2 * k,
            "davidson: max_subspace must be at least 2k");

  DavidsonResult result;
  result.eigenvalues.assign(static_cast<std::size_t>(k), Real{0});
  result.residual_norms.assign(static_cast<std::size_t>(k), Real{0});

  // Growing basis V (n x m) and its image HV, stored side by side.
  RealMatrix v(n, max_subspace);
  RealMatrix hv(n, max_subspace);
  Index m = k;

  cholqr2(x0.view());
  copy<Real>(x0.view(), v.view().cols_block(0, k));

  {
    RealView head = hv.view().cols_block(0, k);
    apply_h(v.view().cols_block(0, k), head);
    ++result.operator_applications;
  }

  RealMatrix ritz(n, k);    // current Ritz vectors
  RealMatrix h_ritz(n, k);  // their images

  for (Index iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Rayleigh-Ritz on the current basis.
    const RealMatrix small_h = gemm(Trans::kYes, Trans::kNo,
                                    v.view().cols_block(0, m),
                                    hv.view().cols_block(0, m));
    const EigResult small = syev(small_h.view());

    // Lowest-k Ritz pairs and their images (no extra H applies).
    const RealConstView coeff = small.vectors.view().cols_block(0, k);
    gemm(Trans::kNo, Trans::kNo, Real{1}, v.view().cols_block(0, m), coeff,
         Real{0}, ritz.view());
    gemm(Trans::kNo, Trans::kNo, Real{1}, hv.view().cols_block(0, m), coeff,
         Real{0}, h_ritz.view());
    for (Index j = 0; j < k; ++j) {
      result.eigenvalues[static_cast<std::size_t>(j)] =
          small.values[static_cast<std::size_t>(j)];
    }

    // Residual block R = H x - θ x.
    RealMatrix r = to_matrix<Real>(h_ritz.view());
    bool all_converged = true;
    for (Index j = 0; j < k; ++j) {
      const Real theta = result.eigenvalues[static_cast<std::size_t>(j)];
      Real norm = 0;
      for (Index i = 0; i < n; ++i) {
        r(i, j) -= theta * ritz(i, j);
        norm += r(i, j) * r(i, j);
      }
      norm = std::sqrt(norm);
      result.residual_norms[static_cast<std::size_t>(j)] = norm;
      if (norm > options.tolerance * std::max(Real{1}, std::abs(theta))) {
        all_converged = false;
      }
    }
    if (all_converged) {
      result.converged = true;
      break;
    }

    if (preconditioner) preconditioner(r.view(), result.eigenvalues);

    // Keep only the unconverged residual columns: normalizing a
    // machine-zero residual would inject noise into the basis and stall
    // the remaining pairs.
    std::vector<Index> active;
    for (Index j = 0; j < k; ++j) {
      const Real scale = std::max(
          Real{1}, std::abs(result.eigenvalues[static_cast<std::size_t>(j)]));
      if (result.residual_norms[static_cast<std::size_t>(j)] >
          Real{0.1} * options.tolerance * scale) {
        active.push_back(j);
      }
    }
    if (active.empty()) {
      result.converged = true;
      break;
    }
    const Index ka = static_cast<Index>(active.size());
    RealMatrix r_active(n, ka);
    for (Index t = 0; t < ka; ++t) {
      const Index j = active[static_cast<std::size_t>(t)];
      for (Index i = 0; i < n; ++i) r_active(i, t) = r(i, j);
    }

    // Thick restart when the basis is full: collapse to the Ritz block.
    if (m + ka > max_subspace) {
      copy<Real>(ritz.view(), v.view().cols_block(0, k));
      copy<Real>(h_ritz.view(), hv.view().cols_block(0, k));
      m = k;
    }

    // Orthonormalize the correction block against the basis and append.
    project_out(v.view().cols_block(0, m), r_active.view());
    cholqr2(r_active.view());
    project_out(v.view().cols_block(0, m), r_active.view());
    cholqr2(r_active.view());
    copy<Real>(r_active.view(), v.view().cols_block(m, ka));
    {
      RealView new_hv = hv.view().cols_block(m, ka);
      apply_h(v.view().cols_block(m, ka), new_hv);
      ++result.operator_applications;
    }
    m += ka;
  }

  result.eigenvectors = std::move(ritz);
  return result;
}

}  // namespace lrt::la
