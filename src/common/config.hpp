// Basic types and numeric constants shared across the library.
//
// All physical quantities are expressed in Hartree atomic units:
// lengths in Bohr, energies in Hartree. Conversion helpers are provided
// for the few places (reports, DOS plots) that print eV or Angstrom.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lrt {

/// Index type used for matrix dimensions and grid sizes. Signed so that
/// reverse loops and differences are well-defined (C++ Core Guidelines
/// ES.100/ES.102).
using Index = std::ptrdiff_t;

/// Default floating point type of the whole library.
using Real = double;

namespace units {

/// 1 Hartree in electron-volts.
inline constexpr Real kHartreeToEv = 27.211386245988;

/// 1 Bohr in Angstrom.
inline constexpr Real kBohrToAngstrom = 0.529177210903;

/// 1 Angstrom in Bohr.
inline constexpr Real kAngstromToBohr = 1.0 / kBohrToAngstrom;

}  // namespace units

namespace constants {

inline constexpr Real kPi = 3.14159265358979323846;
inline constexpr Real kTwoPi = 2.0 * kPi;
inline constexpr Real kFourPi = 4.0 * kPi;

}  // namespace constants

}  // namespace lrt
