#include "common/timer.hpp"

#include <ctime>

namespace lrt {

double ThreadCpuTimer::now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace lrt
