#include "common/timer.hpp"

#include <ctime>

namespace lrt {

double ThreadCpuTimer::now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

void WallProfiler::add(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = totals_.try_emplace(name, 0.0);
  if (inserted) order_.push_back(name);
  it->second += seconds;
}

double WallProfiler::total(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

double WallProfiler::grand_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (const auto& [name, secs] : totals_) sum += secs;
  return sum;
}

std::vector<std::string> WallProfiler::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

void WallProfiler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
  order_.clear();
}

}  // namespace lrt
