// Deterministic pseudo-random number generation.
//
// A self-contained xoshiro256++ engine so that tests and benches are
// reproducible across standard-library implementations (std::mt19937 is
// portable, but distributions are not). All library randomness (K-Means
// fallback seeding, randomized QRCP projections, synthetic workloads)
// flows through Rng.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/config.hpp"

namespace lrt {

/// Complete serializable Rng state (xoshiro256++ words plus the Marsaglia
/// polar cache). Trivially copyable so checkpoints (src/ft/) can store it
/// as a raw section and restore a generator mid-stream.
struct RngState {
  std::uint64_t word[4] = {};
  bool has_cached = false;
  Real cached = 0.0;
};

/// xoshiro256++ generator (Blackman & Vigna, public domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to fill the state from one word.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  Real uniform() {
    return static_cast<Real>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  Real uniform(Real lo, Real hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
    std::uint64_t value;
    do {
      value = next_u64();
    } while (value >= limit);
    return value % n;
  }

  /// Standard normal via Marsaglia polar method.
  Real normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    Real u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const Real factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    has_cached_ = true;
    return u * factor;
  }

  /// Snapshot of the full generator state; set_state() resumes the exact
  /// draw sequence (used by K-Means checkpoint/restart, docs/RESILIENCE.md).
  RngState state() const {
    RngState s;
    for (int i = 0; i < 4; ++i) s.word[i] = state_[i];
    s.has_cached = has_cached_;
    s.cached = cached_;
    return s;
  }

  void set_state(const RngState& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.word[i];
    has_cached_ = s.has_cached;
    cached_ = s.cached;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_cached_ = false;
  Real cached_ = 0.0;
};

}  // namespace lrt
