// Error handling: precondition checks that throw, and debug assertions.
//
// Library code validates user-facing preconditions with LRT_CHECK (always
// on, throws lrt::Error) and internal invariants with LRT_ASSERT
// (compiled out in NDEBUG builds).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lrt {

/// Exception thrown on violated preconditions or numerical failures
/// (e.g. Cholesky of an indefinite matrix, non-converged eigensolver).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace lrt

/// Precondition check, always enabled. Usage:
///   LRT_CHECK(n > 0, "matrix dimension must be positive, got " << n);
#define LRT_CHECK(expr, ...)                                           \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream lrt_check_os_;                                \
      lrt_check_os_ << "" __VA_ARGS__;                                 \
      ::lrt::detail::throw_error(#expr, __FILE__, __LINE__,            \
                                 lrt_check_os_.str());                 \
    }                                                                  \
  } while (false)

/// Internal invariant; active unless NDEBUG.
#ifdef NDEBUG
#define LRT_ASSERT(expr, ...) ((void)0)
#else
#define LRT_ASSERT(expr, ...) LRT_CHECK(expr, __VA_ARGS__)
#endif
