// Tiny command-line option parser for the examples and bench drivers.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms.
// Unknown options raise an error listing registered names, so examples
// fail loudly instead of silently ignoring typos.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace lrt {

class CliParser {
 public:
  /// `description` is printed by help().
  explicit CliParser(std::string description);

  /// Registers an option with a default value; returns *this for chaining.
  CliParser& add(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv. Throws lrt::Error on unknown or malformed options.
  /// Recognizes --help and sets help_requested().
  void parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }

  /// Usage text.
  std::string help() const;

  std::string get(const std::string& name) const;
  Index get_index(const std::string& name) const;
  Real get_real(const std::string& name) const;
  bool get_bool(const std::string& name) const;

 private:
  struct Option {
    std::string default_value;
    std::string value;
    std::string help;
  };

  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
  bool help_requested_ = false;
};

}  // namespace lrt
