// Wall-clock timing utilities.
//
// Timer        — simple stopwatch.
// WallProfiler — accumulates named phase durations; used by the benchmark
//                harness to split Hamiltonian construction into the paper's
//                Figure-8 categories (K-Means / FFT / MPI / GEMM+Allreduce).
// ScopedPhase  — RAII guard adding its lifetime to one WallProfiler phase.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.hpp"

namespace lrt {

/// Monotonic stopwatch measuring seconds as double.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU stopwatch (CLOCK_THREAD_CPUTIME_ID): counts only cycles
/// this thread actually executed — excludes time blocked on condition
/// variables *and* time descheduled while other rank-threads run. This is
/// the honest "busy time" measure for the simulated-rank scaling benches
/// on an oversubscribed core (see DESIGN.md).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  double seconds() const { return now() - start_; }
  void reset() { start_ = now(); }

  static double now();

 private:
  double start_;
};

/// Accumulates wall time per named phase. Thread-safe: concurrent ranks of
/// the par runtime may add to the same profiler.
class WallProfiler {
 public:
  WallProfiler() = default;

  /// Movable (so result structs can carry one); moving while another
  /// thread is still adding is a caller bug, same as for containers.
  WallProfiler(WallProfiler&& other) noexcept
      : totals_(std::move(other.totals_)), order_(std::move(other.order_)) {}
  WallProfiler& operator=(WallProfiler&& other) noexcept {
    if (this != &other) {
      totals_ = std::move(other.totals_);
      order_ = std::move(other.order_);
    }
    return *this;
  }
  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

  /// Adds `seconds` to phase `name`, creating the phase if needed.
  void add(const std::string& name, double seconds);

  /// Accumulated seconds for `name`; 0 if the phase never ran.
  double total(const std::string& name) const;

  /// Sum over all phases.
  double grand_total() const;

  /// Phase names in insertion order.
  std::vector<std::string> phases() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> totals_;
  std::vector<std::string> order_;
};

/// RAII phase guard:
///   { ScopedPhase p(profiler, "fft"); do_ffts(); }
class ScopedPhase {
 public:
  ScopedPhase(WallProfiler& profiler, std::string name)
      : profiler_(&profiler), name_(std::move(name)) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() { profiler_->add(name_, timer_.seconds()); }

 private:
  WallProfiler* profiler_;
  std::string name_;
  Timer timer_;
};

}  // namespace lrt
