// Wall-clock timing utilities.
//
// Timer          — simple stopwatch.
// ThreadCpuTimer — per-thread CPU stopwatch for oversubscribed benches.
//
// The phase-profiling pieces (WallProfiler, ScopedPhase) live in
// obs/obs.hpp: they were born here, but once they grew Span emission
// they belonged to the obs layer — keeping them here made common depend
// on obs, inverting the layer DAG.
#pragma once

#include <chrono>

#include "common/config.hpp"

namespace lrt {

/// Monotonic stopwatch measuring seconds as double.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU stopwatch (CLOCK_THREAD_CPUTIME_ID): counts only cycles
/// this thread actually executed — excludes time blocked on condition
/// variables *and* time descheduled while other rank-threads run. This is
/// the honest "busy time" measure for the simulated-rank scaling benches
/// on an oversubscribed core (see DESIGN.md).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  double seconds() const { return now() - start_; }
  void reset() { start_ = now(); }

  static double now();

 private:
  double start_;
};

}  // namespace lrt
