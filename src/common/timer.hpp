// Wall-clock timing utilities.
//
// Timer        — simple stopwatch.
// WallProfiler — accumulates named phase durations; since the obs
//                subsystem landed this is an alias for
//                obs::PhaseAccumulator (same API, same semantics). Used
//                by the benchmark harness to split Hamiltonian
//                construction into the paper's Figure-8 categories
//                (K-Means / FFT / MPI / GEMM+Allreduce).
// ScopedPhase  — RAII guard adding its lifetime to one WallProfiler
//                phase; also emits an obs::Span so profiled phases show
//                up in LRT_TRACE Chrome traces for free.
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "common/config.hpp"
#include "obs/obs.hpp"

namespace lrt {

/// Monotonic stopwatch measuring seconds as double.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU stopwatch (CLOCK_THREAD_CPUTIME_ID): counts only cycles
/// this thread actually executed — excludes time blocked on condition
/// variables *and* time descheduled while other rank-threads run. This is
/// the honest "busy time" measure for the simulated-rank scaling benches
/// on an oversubscribed core (see DESIGN.md).
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  double seconds() const { return now() - start_; }
  void reset() { start_ = now(); }

  static double now();

 private:
  double start_;
};

/// Accumulates wall time per named phase. Thread-safe: concurrent ranks
/// of the par runtime may add to the same profiler.
using WallProfiler = obs::PhaseAccumulator;

/// RAII phase guard:
///   { ScopedPhase p(profiler, "fft"); do_ffts(); }
class ScopedPhase {
 public:
  ScopedPhase(WallProfiler& profiler, std::string name)
      : profiler_(&profiler),
        name_(std::move(name)),
        span_(name_.c_str()) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    span_.end();
    profiler_->add(name_, timer_.seconds());
  }

 private:
  WallProfiler* profiler_;
  std::string name_;
  // Declared after name_ so name_.c_str() is valid for the span's whole
  // lifetime; closed explicitly in the dtor before name_ could go away.
  obs::Span span_;
  Timer timer_;
};

}  // namespace lrt
