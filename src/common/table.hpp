// Console table and CSV emission for the benchmark harness.
//
// Every bench prints a paper-style table (aligned columns) and can also
// dump the same rows as CSV for plotting. Cells are stored as formatted
// strings; numeric helpers format with sensible defaults.
#pragma once

#include <string>
#include <vector>

#include "common/config.hpp"

namespace lrt {

class Table {
 public:
  /// `title` is printed above the table; `columns` are the header cells.
  Table(std::string title, std::vector<std::string> columns);

  /// Starts a new row. Calls to cell() append to the latest row.
  Table& row();

  Table& cell(const std::string& text);
  Table& cell(const char* text);
  Table& cell(Real value, int precision = 4);
  Table& cell(Index value);
  Table& cell(int value) { return cell(static_cast<Index>(value)); }

  /// Renders the aligned table to a string (with title and separator).
  std::string str() const;

  /// Prints to stdout.
  void print() const;

  /// Writes `title` as a comment line followed by CSV rows to `path`.
  void write_csv(const std::string& path) const;

  Index num_rows() const { return static_cast<Index>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a Real with fixed precision (helper shared with benches).
std::string format_real(Real value, int precision);

}  // namespace lrt
