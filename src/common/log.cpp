#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace lrt::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_write_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::cerr << "[lrt " << level_name(level) << "] " << message << "\n";
}

}  // namespace lrt::log
