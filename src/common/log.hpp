// Minimal leveled logger writing to stderr.
//
// Intended for coarse progress reporting from drivers (SCF iterations,
// LOBPCG convergence); inner kernels never log.
#pragma once

#include <sstream>
#include <string>

namespace lrt::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default kWarn so that
/// tests and benches stay quiet unless they opt in.
void set_level(Level level);
Level level();

void write(Level level, const std::string& message);

namespace detail {

template <typename... Args>
void emit(Level lvl, Args&&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}

}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}

}  // namespace lrt::log
