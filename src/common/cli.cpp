#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace lrt {

CliParser::CliParser(std::string description)
    : description_(std::move(description)) {}

CliParser& CliParser::add(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  LRT_CHECK(!options_.count(name), "duplicate option --" << name);
  options_[name] = Option{default_value, default_value, help};
  order_.push_back(name);
  return *this;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    LRT_CHECK(arg.rfind("--", 0) == 0,
              "expected option starting with --, got '" << arg << "'");
    arg = arg.substr(2);

    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = options_.find(name);
      LRT_CHECK(it != options_.end(), "unknown option --" << name << "\n"
                                                          << help());
      const bool is_flag =
          it->second.default_value == "true" || it->second.default_value == "false";
      if (is_flag) {
        value = "true";
      } else {
        LRT_CHECK(i + 1 < argc, "option --" << name << " expects a value");
        value = argv[++i];
      }
    }
    auto it = options_.find(name);
    LRT_CHECK(it != options_.end(), "unknown option --" << name << "\n"
                                                        << help());
    it->second.value = value;
  }
}

std::string CliParser::help() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name << " (default: " << opt.default_value << ")\n      "
       << opt.help << "\n";
  }
  return os.str();
}

std::string CliParser::get(const std::string& name) const {
  auto it = options_.find(name);
  LRT_CHECK(it != options_.end(), "option --" << name << " not registered");
  return it->second.value;
}

Index CliParser::get_index(const std::string& name) const {
  const std::string value = get(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  LRT_CHECK(end && *end == '\0',
            "option --" << name << ": '" << value << "' is not an integer");
  return static_cast<Index>(parsed);
}

Real CliParser::get_real(const std::string& name) const {
  const std::string value = get(name);
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  LRT_CHECK(end && *end == '\0',
            "option --" << name << ": '" << value << "' is not a number");
  return parsed;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string value = get(name);
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  LRT_CHECK(false, "option --" << name << ": '" << value
                               << "' is not a boolean");
  return false;
}

}  // namespace lrt
