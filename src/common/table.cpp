#include "common/table.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace lrt {

std::string format_real(Real value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  LRT_CHECK(!columns_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  LRT_CHECK(!rows_.empty(), "call row() before cell()");
  LRT_CHECK(rows_.back().size() < columns_.size(),
            "row already has " << columns_.size() << " cells");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }

Table& Table::cell(Real value, int precision) {
  return cell(format_real(value, precision));
}

Table& Table::cell(Index value) { return cell(std::to_string(value)); }

std::string Table::str() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << text;
    }
    os << "\n";
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::cout << str() << std::flush; }

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  LRT_CHECK(out.good(), "cannot open '" << path << "' for writing");
  out << "# " << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ",";
      out << cells[c];
    }
    out << "\n";
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace lrt
