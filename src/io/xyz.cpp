#include "io/xyz.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace lrt::io {
namespace {

grid::Species species_for(const std::string& symbol) {
  if (symbol == "H") return grid::species_hydrogen();
  if (symbol == "C") return grid::species_carbon();
  if (symbol == "O") return grid::species_oxygen();
  if (symbol == "Si") return grid::species_silicon();
  LRT_CHECK(false, "no built-in pseudopotential for element '" << symbol
                                                               << "'");
  return {};
}

}  // namespace

void write_xyz(std::ostream& out, const grid::Structure& structure,
               const std::string& comment) {
  out << structure.num_atoms() << "\n" << comment << "\n";
  out.precision(10);
  for (const grid::Atom& atom : structure.atoms) {
    const grid::Species& sp =
        structure.species[static_cast<std::size_t>(atom.species)];
    out << sp.symbol;
    for (int ax = 0; ax < 3; ++ax) {
      out << "  "
          << atom.position[static_cast<std::size_t>(ax)] *
                 units::kBohrToAngstrom;
    }
    out << "\n";
  }
}

void write_xyz_file(const std::string& path,
                    const grid::Structure& structure,
                    const std::string& comment) {
  std::ofstream out(path);
  LRT_CHECK(out.good(), "cannot open '" << path << "' for writing");
  write_xyz(out, structure, comment);
}

grid::Structure read_xyz(std::istream& in, const XyzReadOptions& options) {
  std::string line;
  LRT_CHECK(static_cast<bool>(std::getline(in, line)), "empty XYZ stream");
  Index natoms = 0;
  {
    std::istringstream header(line);
    LRT_CHECK(static_cast<bool>(header >> natoms) && natoms > 0,
              "bad XYZ atom count line: '" << line << "'");
  }
  LRT_CHECK(static_cast<bool>(std::getline(in, line)),
            "missing XYZ comment line");

  grid::Structure structure;
  structure.cell = options.cell;
  std::map<std::string, int> species_index;

  for (Index i = 0; i < natoms; ++i) {
    LRT_CHECK(static_cast<bool>(std::getline(in, line)),
              "XYZ truncated at atom " << i);
    std::istringstream fields(line);
    std::string symbol;
    double x, y, z;
    LRT_CHECK(static_cast<bool>(fields >> symbol >> x >> y >> z),
              "malformed XYZ atom line: '" << line << "'");
    auto [it, inserted] = species_index.try_emplace(
        symbol, static_cast<int>(structure.species.size()));
    if (inserted) structure.species.push_back(species_for(symbol));

    grid::Vec3 position = {x * units::kAngstromToBohr,
                           y * units::kAngstromToBohr,
                           z * units::kAngstromToBohr};
    if (options.wrap) position = options.cell.wrap(position);
    structure.atoms.push_back(grid::Atom{it->second, position});
  }
  return structure;
}

grid::Structure read_xyz_file(const std::string& path,
                              const XyzReadOptions& options) {
  std::ifstream in(path);
  LRT_CHECK(in.good(), "cannot open '" << path << "'");
  return read_xyz(in, options);
}

}  // namespace lrt::io
