// XYZ structure file I/O.
//
// The standard interchange format for atomic structures: atom count,
// comment line, then "symbol x y z" in Angstrom. Reading maps symbols
// onto the built-in HGH species table and wraps positions into the cell
// given in the options.
#pragma once

#include <iosfwd>
#include <string>

#include "grid/crystal.hpp"

namespace lrt::io {

/// Writes `structure` in XYZ format (positions converted to Angstrom).
void write_xyz(std::ostream& out, const grid::Structure& structure,
               const std::string& comment = "");
void write_xyz_file(const std::string& path,
                    const grid::Structure& structure,
                    const std::string& comment = "");

struct XyzReadOptions {
  /// Cell to attach (XYZ carries no lattice). Required.
  grid::UnitCell cell;
  /// Wrap atoms into the cell after conversion to Bohr.
  bool wrap = true;
};

/// Parses an XYZ stream; throws lrt::Error on malformed content or on a
/// symbol with no built-in species parameters (H, C, O, Si).
grid::Structure read_xyz(std::istream& in, const XyzReadOptions& options);
grid::Structure read_xyz_file(const std::string& path,
                              const XyzReadOptions& options);

}  // namespace lrt::io
