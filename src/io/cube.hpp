// Gaussian cube file output for volumetric data (densities, orbitals,
// pair-product weights). Readable by VMD/VESTA/Avogadro — the standard
// way to inspect the isosurfaces the paper's Fig 6/9 insets show.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "grid/crystal.hpp"
#include "grid/rsgrid.hpp"

namespace lrt::io {

/// Writes `values` (flat, in the grid's row-major layout) as a cube file.
/// Atom charges use the species Z_ion. The `structure` may be empty
/// (atoms section omitted gracefully with 0 atoms).
void write_cube(std::ostream& out, const std::string& title,
                const grid::RealSpaceGrid& grid,
                const grid::Structure& structure,
                const std::vector<Real>& values);

void write_cube_file(const std::string& path, const std::string& title,
                     const grid::RealSpaceGrid& grid,
                     const grid::Structure& structure,
                     const std::vector<Real>& values);

}  // namespace lrt::io
