// Atomic structures: species data and crystal builders.
//
// Species carry the parameters of the Hartwigsen-Goedecker-Hutter (HGH)
// norm-conserving pseudopotential *local part* (see dft/pseudopotential).
// Builders produce the systems of the paper's evaluation:
//  - diamond-structure silicon supercells Si_{8 n³} (Si8, Si64, Si216, ...),
//  - a single water molecule in a vacuum box (accuracy benchmark),
//  - an AB-stacked bilayer-graphene patch with adjustable interlayer
//    distance — the laptop-scale analog of the paper's 1,180-atom MATBG
//    application (Fig 9); see DESIGN.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "grid/unitcell.hpp"

namespace lrt::grid {

struct Species {
  std::string symbol;
  Real z_ion = 0;    ///< valence (ionic) charge
  Real r_loc = 0;    ///< HGH local radius (Bohr)
  Real c1 = 0;       ///< HGH local C1
  Real c2 = 0;       ///< HGH local C2
  Real c3 = 0;
  Real c4 = 0;

  // Nonlocal (Kleinman-Bylander separable) channels. Off-diagonal h12
  // couplings are omitted (diagonal-KB simplification, see DESIGN.md).
  Real r_s = 0;      ///< s-channel radius; 0 disables the channel
  Real h11_s = 0;    ///< first s projector strength
  Real h22_s = 0;    ///< second s projector strength
  Real r_p = 0;      ///< p-channel radius; 0 disables
  Real h11_p = 0;    ///< first p projector strength
};

/// Built-in HGH local-part parameter sets (LDA, from the HGH paper).
Species species_silicon();
Species species_hydrogen();
Species species_oxygen();
Species species_carbon();

struct Atom {
  int species = 0;  ///< index into Structure::species
  Vec3 position;    ///< Cartesian, Bohr, inside the cell
};

struct Structure {
  UnitCell cell;
  std::vector<Species> species;
  std::vector<Atom> atoms;

  Index num_atoms() const { return static_cast<Index>(atoms.size()); }

  /// Total valence electron count (Σ Z_ion).
  Real num_electrons() const;

  /// Number of doubly occupied Kohn-Sham orbitals (electrons / 2,
  /// requires an even electron count).
  Index num_occupied() const;
};

/// Diamond silicon supercell with n x n x n conventional cubic cells
/// (8 atoms each): n=1 -> Si8, n=2 -> Si64, n=3 -> Si216, ...
/// Lattice constant 5.431 Å.
Structure make_silicon_supercell(Index n);

/// One H2O molecule centered in a cubic box of `box_length` Bohr
/// (paper Table 5 uses an 11 Å box).
Structure make_water_box(Real box_length);

/// AB-stacked bilayer graphene: nx x ny rectangular 4-atom cells per
/// layer, interlayer distance `dz` Bohr, vacuum padding above/below.
/// The MATBG analog of the Fig 9 application.
Structure make_bilayer_graphene(Index nx, Index ny, Real dz, Real vacuum);

}  // namespace lrt::grid
