#include "grid/crystal.hpp"

#include <cmath>

namespace lrt::grid {
namespace {

using units::kAngstromToBohr;

}  // namespace

Species species_silicon() {
  // HGH LDA, Si: Zion=4, rloc=0.44, C1=-7.336103 (local part).
  return Species{"Si", 4.0, 0.440000, -7.336103, 0.0, 0.0, 0.0,
                 0.422738, 5.906928, 3.258196, 0.484278, 2.727013};
}

Species species_hydrogen() {
  // HGH LDA, H: Zion=1, rloc=0.2, C1=-4.180237, C2=0.725075.
  return Species{"H", 1.0, 0.200000, -4.180237, 0.725075, 0.0, 0.0,
                 0.0, 0.0, 0.0, 0.0, 0.0};
}

Species species_oxygen() {
  // HGH LDA, O: Zion=6, rloc=0.247621, C1=-16.580318, C2=2.395701.
  return Species{"O", 6.0, 0.247621, -16.580318, 2.395701, 0.0, 0.0,
                 0.221786, 18.266917, 0.0, 0.0, 0.0};
}

Species species_carbon() {
  // HGH LDA, C: Zion=4, rloc=0.348830, C1=-8.513771, C2=1.228432.
  return Species{"C", 4.0, 0.348830, -8.513771, 1.228432, 0.0, 0.0,
                 0.304553, 9.522842, 0.0, 0.0, 0.0};
}

Real Structure::num_electrons() const {
  Real total = 0;
  for (const Atom& atom : atoms) {
    total += species[static_cast<std::size_t>(atom.species)].z_ion;
  }
  return total;
}

Index Structure::num_occupied() const {
  const Real electrons = num_electrons();
  const Index n = static_cast<Index>(std::llround(electrons));
  LRT_CHECK(n % 2 == 0, "closed-shell code needs an even electron count, got "
                            << electrons);
  return n / 2;
}

Structure make_silicon_supercell(Index n) {
  LRT_CHECK(n >= 1, "supercell multiplier must be >= 1");
  const Real a = 5.431 * kAngstromToBohr;  // conventional lattice constant

  Structure s;
  s.cell = UnitCell::cubic(a * static_cast<Real>(n));
  s.species = {species_silicon()};

  // Diamond basis: FCC lattice + (1/4,1/4,1/4) shifted second atom;
  // 8 atoms in the conventional cubic cell, fractional coordinates.
  const Real frac[8][3] = {
      {0.00, 0.00, 0.00}, {0.50, 0.50, 0.00}, {0.50, 0.00, 0.50},
      {0.00, 0.50, 0.50}, {0.25, 0.25, 0.25}, {0.75, 0.75, 0.25},
      {0.75, 0.25, 0.75}, {0.25, 0.75, 0.75}};

  for (Index cx = 0; cx < n; ++cx) {
    for (Index cy = 0; cy < n; ++cy) {
      for (Index cz = 0; cz < n; ++cz) {
        for (const auto& f : frac) {
          Atom atom;
          atom.species = 0;
          atom.position = {(static_cast<Real>(cx) + f[0]) * a,
                           (static_cast<Real>(cy) + f[1]) * a,
                           (static_cast<Real>(cz) + f[2]) * a};
          s.atoms.push_back(atom);
        }
      }
    }
  }
  return s;
}

Structure make_water_box(Real box_length) {
  LRT_CHECK(box_length > 6.0, "water box too small");
  Structure s;
  s.cell = UnitCell::cubic(box_length);
  s.species = {species_oxygen(), species_hydrogen()};

  // Experimental geometry: O-H 0.9572 Å, H-O-H 104.52°, centered in box.
  const Real oh = 0.9572 * kAngstromToBohr;
  const Real half_angle = 0.5 * 104.52 * constants::kPi / 180.0;
  const Real cx = 0.5 * box_length;

  Atom o{0, {cx, cx, cx}};
  Atom h1{1,
          {cx + oh * std::sin(half_angle), cx, cx + oh * std::cos(half_angle)}};
  Atom h2{1,
          {cx - oh * std::sin(half_angle), cx, cx + oh * std::cos(half_angle)}};
  s.atoms = {o, h1, h2};
  return s;
}

Structure make_bilayer_graphene(Index nx, Index ny, Real dz, Real vacuum) {
  LRT_CHECK(nx >= 1 && ny >= 1, "bad graphene patch size");
  LRT_CHECK(dz > 0 && vacuum >= 0, "bad stacking parameters");

  // Rectangular 4-atom graphene cell: a = 2.46 Å, cell (a, a*sqrt(3)).
  const Real a = 2.46 * kAngstromToBohr;
  const Real b = a * std::sqrt(Real{3});
  const Real lx = a * static_cast<Real>(nx);
  const Real ly = b * static_cast<Real>(ny);
  const Real lz = 2.0 * dz + 2.0 * vacuum;

  Structure s;
  s.cell = UnitCell({lx, ly, lz});
  s.species = {species_carbon()};

  // Fractional in-plane positions of the rectangular 4-atom cell.
  const Real frac[4][2] = {
      {0.0, 0.0}, {0.5, 0.5}, {0.0, 1.0 / 3.0}, {0.5, 5.0 / 6.0}};
  // AB (Bernal) stacking: the second layer is shifted by one bond length
  // along y so half its atoms sit above layer-1 hexagon centers.
  const Real ab_shift_y = 1.0 / 3.0;

  const Real z1 = vacuum;
  const Real z2 = vacuum + dz;
  for (Index ix = 0; ix < nx; ++ix) {
    for (Index iy = 0; iy < ny; ++iy) {
      for (const auto& f : frac) {
        const Real x = (static_cast<Real>(ix) + f[0]) * a;
        const Real y0 = (static_cast<Real>(iy) + f[1]) * b;
        s.atoms.push_back(Atom{0, {x, std::fmod(y0, ly), z1}});
        const Real y2 = std::fmod(y0 + ab_shift_y * b, ly);
        s.atoms.push_back(Atom{0, {x, y2, z2}});
      }
    }
  }
  return s;
}

}  // namespace lrt::grid
