#include "grid/gvectors.hpp"

namespace lrt::grid {

GVectors::GVectors(const RealSpaceGrid& grid) : grid_(&grid) {
  const auto& shape = grid.shape();
  g2_.resize(static_cast<std::size_t>(grid.size()));
  const Real b0 = grid.cell().reciprocal(0);
  const Real b1 = grid.cell().reciprocal(1);
  const Real b2 = grid.cell().reciprocal(2);
  Index flat = 0;
  for (Index i0 = 0; i0 < shape[0]; ++i0) {
    const Real g0 = static_cast<Real>(fft_frequency(i0, shape[0])) * b0;
    for (Index i1 = 0; i1 < shape[1]; ++i1) {
      const Real g1 = static_cast<Real>(fft_frequency(i1, shape[1])) * b1;
      for (Index i2 = 0; i2 < shape[2]; ++i2) {
        const Real g2v = static_cast<Real>(fft_frequency(i2, shape[2])) * b2;
        g2_[static_cast<std::size_t>(flat++)] = g0 * g0 + g1 * g1 + g2v * g2v;
      }
    }
  }
}

Vec3 GVectors::g(Index i) const {
  const auto idx = grid_->unflatten(i);
  const auto& shape = grid_->shape();
  return {static_cast<Real>(fft_frequency(idx[0], shape[0])) *
              grid_->cell().reciprocal(0),
          static_cast<Real>(fft_frequency(idx[1], shape[1])) *
              grid_->cell().reciprocal(1),
          static_cast<Real>(fft_frequency(idx[2], shape[2])) *
              grid_->cell().reciprocal(2)};
}

Index GVectors::count_within_cutoff(Real ecut) const {
  Index count = 0;
  for (const Real g2v : g2_) {
    if (Real{0.5} * g2v <= ecut) ++count;
  }
  return count;
}

}  // namespace lrt::grid
