// UnitCell is header-only; this TU exists to give the grid module a home
// for future out-of-line definitions and to compile the header standalone.
#include "grid/unitcell.hpp"
