// Orthorhombic periodic simulation cell.
//
// All systems in the paper's evaluation (cubic silicon supercells, the
// H2O box, the bilayer-graphene sheet) fit in an orthorhombic cell, so the
// lattice is represented by its three edge lengths in Bohr. Reciprocal
// lattice vectors are b_i = 2π / L_i along each axis.
#pragma once

#include <array>
#include <cmath>

#include "common/config.hpp"
#include "common/error.hpp"

namespace lrt::grid {

using Vec3 = std::array<Real, 3>;

class UnitCell {
 public:
  UnitCell() : lengths_{1, 1, 1} {}

  explicit UnitCell(const Vec3& lengths) : lengths_(lengths) {
    for (const Real l : lengths_) {
      LRT_CHECK(l > 0, "cell lengths must be positive");
    }
  }

  static UnitCell cubic(Real length) {
    return UnitCell({length, length, length});
  }

  const Vec3& lengths() const { return lengths_; }
  Real length(int axis) const { return lengths_[static_cast<std::size_t>(axis)]; }

  Real volume() const { return lengths_[0] * lengths_[1] * lengths_[2]; }

  /// Reciprocal lattice constant along `axis` (2π / L).
  Real reciprocal(int axis) const {
    return constants::kTwoPi / lengths_[static_cast<std::size_t>(axis)];
  }

  /// Minimum-image displacement from a to b (component-wise wrap).
  Vec3 minimum_image(const Vec3& a, const Vec3& b) const {
    Vec3 d;
    for (int ax = 0; ax < 3; ++ax) {
      Real delta = b[static_cast<std::size_t>(ax)] - a[static_cast<std::size_t>(ax)];
      const Real l = lengths_[static_cast<std::size_t>(ax)];
      delta -= l * std::round(delta / l);
      d[static_cast<std::size_t>(ax)] = delta;
    }
    return d;
  }

  /// Wraps a position into [0, L) per axis.
  Vec3 wrap(const Vec3& r) const {
    Vec3 w;
    for (int ax = 0; ax < 3; ++ax) {
      const Real l = lengths_[static_cast<std::size_t>(ax)];
      Real x = std::fmod(r[static_cast<std::size_t>(ax)], l);
      if (x < 0) x += l;
      w[static_cast<std::size_t>(ax)] = x;
    }
    return w;
  }

 private:
  Vec3 lengths_;
};

inline Real dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

inline Real norm2(const Vec3& a) { return dot(a, a); }

}  // namespace lrt::grid
