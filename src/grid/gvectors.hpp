// Reciprocal-space (G-vector) tables in FFT index layout.
//
// For FFT index i along an axis of n points, the wrapped frequency is
// f(i) = i for i <= n/2, else i - n; the Cartesian component is
// G = f(i) * 2π / L. The class precomputes |G|² for every grid point —
// consumed by the kinetic operator, the Hartree kernel 4π/|G|², the
// Teter-style preconditioner, and the local pseudopotential builder.
#pragma once

#include <vector>

#include "grid/rsgrid.hpp"

namespace lrt::grid {

class GVectors {
 public:
  explicit GVectors(const RealSpaceGrid& grid);

  Index size() const { return static_cast<Index>(g2_.size()); }

  /// |G|² at FFT-layout flat index i.
  Real g2(Index i) const { return g2_[static_cast<std::size_t>(i)]; }
  const std::vector<Real>& g2_table() const { return g2_; }

  /// Cartesian G vector at flat index i.
  Vec3 g(Index i) const;

  /// Number of G vectors with |G|²/2 <= ecut (plane-wave basis size at
  /// that cutoff; reported by drivers).
  Index count_within_cutoff(Real ecut) const;

 private:
  const RealSpaceGrid* grid_;
  std::vector<Real> g2_;
};

/// Wrapped FFT frequency for index i out of n.
inline Index fft_frequency(Index i, Index n) {
  return i <= n / 2 ? i : i - n;
}

}  // namespace lrt::grid
