#include "grid/rsgrid.hpp"

#include <cmath>

namespace lrt::grid {

RealSpaceGrid::RealSpaceGrid(const UnitCell& cell, std::array<Index, 3> shape)
    : cell_(cell), shape_(shape) {
  for (const Index n : shape_) {
    LRT_CHECK(n >= 1, "grid dimension must be >= 1");
  }
}

RealSpaceGrid RealSpaceGrid::from_cutoff(const UnitCell& cell, Real ecut) {
  LRT_CHECK(ecut > 0, "cutoff must be positive");
  std::array<Index, 3> shape;
  for (int ax = 0; ax < 3; ++ax) {
    const Real ideal =
        std::sqrt(2.0 * ecut) * cell.length(ax) / constants::kPi;
    shape[static_cast<std::size_t>(ax)] =
        std::max<Index>(2, static_cast<Index>(std::ceil(ideal)));
  }
  return RealSpaceGrid(cell, shape);
}

std::vector<Vec3> RealSpaceGrid::positions() const {
  std::vector<Vec3> pts(static_cast<std::size_t>(size()));
  for (Index i = 0; i < size(); ++i) {
    pts[static_cast<std::size_t>(i)] = position(i);
  }
  return pts;
}

}  // namespace lrt::grid
