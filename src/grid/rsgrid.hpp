// Real-space grid over the unit cell.
//
// The grid dimensions follow the paper's rule (§6.1):
//   (Nr)_i = sqrt(2 Ecut) * L_i / π
// rounded up, so the grid resolves plane waves up to the kinetic cutoff.
// Flat indices use the row-major (i0, i1, i2) order shared with Fft3D.
#pragma once

#include <array>
#include <vector>

#include "grid/unitcell.hpp"

namespace lrt::grid {

class RealSpaceGrid {
 public:
  RealSpaceGrid() = default;

  RealSpaceGrid(const UnitCell& cell, std::array<Index, 3> shape);

  /// Builds the grid from a kinetic energy cutoff (Hartree).
  static RealSpaceGrid from_cutoff(const UnitCell& cell, Real ecut);

  const UnitCell& cell() const { return cell_; }
  const std::array<Index, 3>& shape() const { return shape_; }
  Index size() const { return shape_[0] * shape_[1] * shape_[2]; }

  /// Volume element Ω / Nr for grid quadrature.
  Real dv() const { return cell_.volume() / static_cast<Real>(size()); }

  Index flat_index(Index i0, Index i1, Index i2) const {
    return (i0 * shape_[1] + i1) * shape_[2] + i2;
  }

  std::array<Index, 3> unflatten(Index flat) const {
    const Index i2 = flat % shape_[2];
    const Index i1 = (flat / shape_[2]) % shape_[1];
    const Index i0 = flat / (shape_[1] * shape_[2]);
    return {i0, i1, i2};
  }

  /// Cartesian position of grid point `flat` (Bohr).
  Vec3 position(Index flat) const {
    const auto idx = unflatten(flat);
    return {static_cast<Real>(idx[0]) * cell_.length(0) /
                static_cast<Real>(shape_[0]),
            static_cast<Real>(idx[1]) * cell_.length(1) /
                static_cast<Real>(shape_[1]),
            static_cast<Real>(idx[2]) * cell_.length(2) /
                static_cast<Real>(shape_[2])};
  }

  /// All positions as an N x 3 array (used by K-Means clustering).
  std::vector<Vec3> positions() const;

 private:
  UnitCell cell_;
  std::array<Index, 3> shape_ = {1, 1, 1};
};

}  // namespace lrt::grid
