// Post-run causal analysis of a recorded trace.
//
// The tracer (obs.hpp) records per-rank spans and matched message flow
// endpoints; this module turns them into the event DAG the paper's
// scaling argument needs: program order within each rank row plus a
// causal edge for every message whose receiver was already blocked when
// the sender sent (those are the edges that can lengthen the run). A
// backward walk from the last span end extracts the critical path and
// attributes every nanosecond of end-to-end wall time to a (rank,
// phase, work-or-wait) segment — the attribution is exact by
// construction: segments tile [first span start, last span end].
//
// work_wait_by_phase() is the flat (non-path) counterpart: per-phase
// work vs wait vs imbalance, replacing aggregate_phases()'s single
// busiest÷mean factor. "Wait" is the union of the `*.wait` spans the
// collective guards record (time until the last rank entered — exact in
// the threads-as-ranks runtime) plus `par.overlap.wait`.
//
// Both analyses require quiescence, same as aggregate_phases(): no
// instrumented code running concurrently (after par::run returned).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace lrt::obs {

/// One closed span in the neutral trace model (tid = rank row).
struct TraceSpan {
  std::string name;
  long long pid = 0;
  long long tid = 0;
  long long start_ns = 0;
  long long end_ns = 0;
};

/// One matched message edge: sent on src_tid at send_ns, received on
/// dst_tid over [recv_start_ns, recv_end_ns] (recv_start is when the
/// receiver began blocking; < send_ns means it waited on the sender).
struct TraceFlow {
  long long pid = 0;
  long long src_tid = 0;
  long long dst_tid = 0;
  long long send_ns = 0;
  long long recv_start_ns = 0;
  long long recv_end_ns = 0;
};

struct Trace {
  std::vector<TraceSpan> spans;
  std::vector<TraceFlow> flows;
};

/// Snapshot of the in-process recorded trace (spans + completed flow
/// pairs). Quiescence required.
Trace snapshot_trace();

/// Rebuilds a Trace from Chrome-trace JSON as written by
/// write_chrome_trace() / the LRT_TRACE exit merge. `pid` selects one
/// process from a merged multi-process file; -1 picks the pid with the
/// largest total span time.
Trace trace_from_chrome_json(const json::Value& doc, long long pid = -1);

/// One critical-path segment: [start_ns, end_ns] on rank row `tid`.
struct CriticalSegment {
  enum class Kind { kWork, kWait };
  long long tid = 0;
  Kind kind = Kind::kWork;
  long long start_ns = 0;
  long long end_ns = 0;
};

/// Critical-path time attributed to one phase (an outermost span name
/// on the rank rows the path visits; "(untracked)" covers path time no
/// span was open for).
struct CriticalPhase {
  std::string name;
  double work_seconds = 0.0;
  double wait_seconds = 0.0;
  double share_pct = 0.0;  ///< (work + wait) / total, percent
};

struct CriticalPathReport {
  double total_seconds = 0.0;       ///< last span end - first span start
  double attributed_seconds = 0.0;  ///< sum over segments; == total
  int hops = 0;                     ///< message edges on the path
  std::vector<CriticalSegment> segments;  ///< walk order (latest first)
  std::vector<CriticalPhase> phases;      ///< by share, descending
};

/// Extracts the critical path of `trace` (see file comment). Empty
/// trace -> zero report.
CriticalPathReport critical_path(const Trace& trace);

/// Convenience: critical path of the in-process recorded trace.
/// Quiescence required.
CriticalPathReport critical_path();

/// Per-phase work/wait/imbalance over every rank row (not just the
/// critical path). One entry per outermost span name, first-seen order.
struct PhaseWorkWait {
  std::string name;
  long long count = 0;          ///< outermost intervals, all ranks
  int ranks = 0;                ///< distinct rank rows with this phase
  double work_seconds = 0.0;    ///< total minus wait, all ranks
  double wait_seconds = 0.0;    ///< overlap with *.wait spans, all ranks
  double max_rank_seconds = 0.0;   ///< busiest rank's work+wait
  double mean_rank_seconds = 0.0;  ///< mean work+wait per participating rank
  double imbalance = 0.0;          ///< max / mean; 1.0 = balanced
};

std::vector<PhaseWorkWait> work_wait_by_phase(const Trace& trace);

}  // namespace lrt::obs
