// Rank-aware span tracer and phase aggregation.
//
// obs::Span is an RAII trace span: construction stamps a start time,
// destruction (or end()) records [start, end) into a per-thread buffer —
// no lock, no allocation on the steady-state hot path. Each simulated
// rank thread registers its world rank via ThreadRankScope (par::run does
// this), so exported traces carry one Chrome-trace tid per rank.
//
// When tracing is disabled (the default), a Span is a single relaxed
// atomic load and two untaken branches — cheap enough to leave in
// production hot paths (bench/bench_obs_overhead.cpp gates this < 20 ns).
//
// Enabling:
//   LRT_TRACE=path.json   enable tracing; write/merge a Chrome trace at
//                         process exit (open in chrome://tracing)
//   LRT_PROFILE=1         enable tracing; print the aggregated per-phase
//                         report to stderr at process exit
//   set_tracing_enabled() programmatic control (tests, benches)
//
// Thread-safety: recording is safe from any thread. aggregate_phases(),
// write_chrome_trace(), and reset_trace() walk every thread's buffer and
// must only run at quiescence — when no instrumented code is executing
// concurrently (e.g. after par::run returned, which joins all rank
// threads; the join provides the happens-before edge). This mirrors the
// rule for par state in docs/CONCURRENCY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lrt::obs {

namespace detail {

extern std::atomic<bool> g_tracing_enabled;

/// Monotonic nanoseconds (steady clock).
long long now_ns();

/// Appends one closed span to the calling thread's buffer. `name` is
/// copied; the pointer need not outlive the call.
void record_span(const char* name, long long start_ns, long long end_ns);

/// One endpoint of a matched message (par::Comm stamps these when
/// tracing is on). The (context, src, dst, tag, seq) tuple identifies
/// the message: seq is the sender's monotone per-(dst, tag) channel
/// sequence number, so a send and its matching receive carry the same
/// tuple and the exporter can emit paired Chrome flow events
/// (ph:"s"/"f") that Perfetto draws as arrows between rank rows.
struct FlowRecord {
  long long run = 0;          ///< process-unique runtime instance id
  long long context = 0;      ///< communicator context id
  int src = -1;               ///< sender world rank
  int dst = -1;               ///< receiver world rank
  int tag = 0;
  long long seq = 0;          ///< per-(dst, tag) channel sequence number
  long long send_ns = 0;      ///< sender's stamp (travels with the message)
  long long recv_start_ns = -1;  ///< 'f' only: when the receive began
  long long ts_ns = 0;        ///< event time: send for 's', completion for 'f'
  char phase = 's';           ///< 's' = send, 'f' = receive completion
  int rank = -1;              ///< recording thread's rank (filled by record_flow)
};

/// Appends one flow endpoint to the calling thread's buffer.
void record_flow(const FlowRecord& flow);

/// Copies of the raw recorded data, for obs::snapshot_trace() and tests.
/// Quiescence required (see file comment).
struct SpanSnapshot {
  std::string name;
  int rank = -1;
  long long start_ns = 0;
  long long end_ns = 0;
};
std::vector<SpanSnapshot> snapshot_spans();
std::vector<FlowRecord> snapshot_flows();

}  // namespace detail

/// Chrome-trace tid used for threads outside any par::run region
/// (thread_rank() == -1). validate_trace and the critical-path analysis
/// rely on this value to tell rank rows from the main thread.
inline constexpr long long kNonRankTid = 1000000;

/// Peak resident set size (VmHWM from /proc/self/status) in bytes, or -1
/// when unavailable (non-Linux). Cheap enough for phase boundaries — one
/// small procfs read — but not for hot loops.
long long vm_hwm_bytes();

/// True when spans are being recorded.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off (counters are unaffected; they are
/// always on).
void set_tracing_enabled(bool enabled);

/// The simulated world rank of the calling thread, or -1 for threads
/// outside any par::run region (they export under a synthetic tid).
int thread_rank();
void set_thread_rank(int rank);

/// RAII rank tag for the current thread; par::run wraps each rank body
/// in one so spans and aggregation attribute to the right rank.
class ThreadRankScope {
 public:
  explicit ThreadRankScope(int rank) : saved_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ThreadRankScope() { set_thread_rank(saved_); }

  ThreadRankScope(const ThreadRankScope&) = delete;
  ThreadRankScope& operator=(const ThreadRankScope&) = delete;

 private:
  int saved_;
};

/// RAII trace span. Nesting works naturally (inner spans close first);
/// the Chrome trace viewer reconstructs the hierarchy from containment.
///
///   { obs::Span span("fft.fft3d"); transform(...); }
///
/// `name` must stay valid until the span closes (string literals are the
/// norm); the recorder copies it at close time.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = detail::now_ns();
    }
  }

  /// Closes the span early (before scope exit). Idempotent.
  void end() {
    if (name_ != nullptr) {
      detail::record_span(name_, start_ns_, detail::now_ns());
      name_ = nullptr;
    }
  }

  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  long long start_ns_ = 0;
};

/// Per-phase statistics aggregated across rank threads (the Fig.-8 style
/// report: who spent how long where, and how unbalanced it was).
struct PhaseStats {
  std::string name;
  long long count = 0;          ///< spans recorded, all ranks
  double total_seconds = 0.0;   ///< sum over all ranks
  int ranks = 0;                ///< distinct ranks that recorded this phase
  double min_rank_seconds = 0.0;
  double max_rank_seconds = 0.0;
  double mean_rank_seconds = 0.0;
  double imbalance = 0.0;       ///< max / mean per-rank time; 1.0 = balanced
};

/// Aggregates every recorded span by name, in first-seen order. Threads
/// tagged rank -1 aggregate as one pseudo-rank. Quiescence required (see
/// file comment).
std::vector<PhaseStats> aggregate_phases();

/// Number of spans recorded so far (all threads). Quiescence required.
std::size_t span_count();

/// Discards all recorded spans. Quiescence required.
void reset_trace();

/// Writes the recorded spans as Chrome-trace JSON ("X" complete events,
/// tid = rank). Overwrites `path`. Returns false if the file could not
/// be opened. Quiescence required. The automatic at-exit write for
/// LRT_TRACE instead *merges* with an existing file so serial test
/// processes sharing one path accumulate (see docs/OBSERVABILITY.md).
bool write_chrome_trace(const std::string& path);

/// Drop-in replacement for the old common/timer.hpp WallProfiler:
/// accumulates wall seconds per named phase, thread-safe, insertion
/// ordered. Kept alongside the tracer because result structs carry one
/// by value (DistDriverStats::phases feeds Fig. 8 directly).
class PhaseAccumulator {
 public:
  PhaseAccumulator() = default;

  /// Movable (so result structs can carry one); moving while another
  /// thread is still adding is a caller bug, same as for containers.
  PhaseAccumulator(PhaseAccumulator&& other) noexcept
      : totals_(std::move(other.totals_)), order_(std::move(other.order_)) {}
  PhaseAccumulator& operator=(PhaseAccumulator&& other) noexcept {
    if (this != &other) {
      totals_ = std::move(other.totals_);
      order_ = std::move(other.order_);
    }
    return *this;
  }
  PhaseAccumulator(const PhaseAccumulator&) = delete;
  PhaseAccumulator& operator=(const PhaseAccumulator&) = delete;

  /// Adds `seconds` to phase `name`, creating the phase if needed.
  void add(const std::string& name, double seconds);

  /// Accumulated seconds for `name`; 0 if the phase never ran.
  double total(const std::string& name) const;

  /// Sum over all phases.
  double grand_total() const;

  /// Phase names in insertion order.
  std::vector<std::string> phases() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> totals_;
  std::vector<std::string> order_;
};

/// The name the benchmark harness uses for the per-phase accumulator
/// (splits Hamiltonian construction into the paper's Figure-8
/// categories: K-Means / FFT / MPI / GEMM+Allreduce). Lived in
/// common/timer.hpp before the obs subsystem landed.
using WallProfiler = PhaseAccumulator;

/// RAII phase guard:
///   { obs::ScopedPhase p(profiler, "fft"); do_ffts(); }
/// Adds its lifetime to one WallProfiler phase and emits a Span so
/// profiled phases show up in LRT_TRACE Chrome traces for free.
class ScopedPhase {
 public:
  ScopedPhase(WallProfiler& profiler, std::string name)
      : profiler_(&profiler),
        name_(std::move(name)),
        span_(name_.c_str()),
        start_(std::chrono::steady_clock::now()) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    span_.end();
    profiler_->add(name_,
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

 private:
  WallProfiler* profiler_;
  std::string name_;
  // Declared after name_ so name_.c_str() is valid for the span's whole
  // lifetime; closed explicitly in the dtor before name_ could go away.
  Span span_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lrt::obs
