// Minimal JSON support for the observability subsystem.
//
// The obs layer both emits machine-readable artifacts (Chrome traces,
// BENCH_*.json reports) and reads them back (trace merging across test
// processes, the validate_trace tool, tests that parse their own output).
// This is a small recursive-descent DOM — objects keep member order, all
// numbers are double — sufficient for those artifacts, not a general
// JSON library.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace lrt::obs::json {

/// One JSON value; arrays/objects own their children.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parses a complete document. Throws lrt::Error on malformed input or
/// trailing non-whitespace.
Value parse(const std::string& text);

/// Serializes a Value back to compact JSON (round-trips through parse).
std::string dump(const Value& value);

/// Quoted, escaped JSON string literal for `s`.
std::string quote(const std::string& s);

/// Round-trippable number formatting; non-finite values become "null"
/// (JSON has no NaN/Inf). Integral values print without an exponent.
std::string number(double v);

}  // namespace lrt::obs::json
