// lrt.report/1: the performance report and regression gate.
//
// PerfReport ingests what a run leaves behind — a Chrome trace (flow
// edges included) and lrt.bench/1 files — and renders one artifact in
// two forms: schema-versioned JSON for machines and markdown for
// humans. Given a baseline bench file and gates ("metric:pct", lower is
// better, pct = allowed regression), it also compares matched records
// and yields per-gate verdicts; gate_exit_code() maps them onto the
// tools/lrt-report CLI's exit codes (0 pass, 1 regression, 2 missing
// metric/label), which is what bench.sh --smoke and ci.sh enforce.
#pragma once

#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/json.hpp"

namespace lrt::obs {

/// Schema identifier stamped into every report; bump on breaking layout
/// changes.
inline constexpr const char* kReportSchema = "lrt.report/1";

/// One regression gate: `metric` may name a phase, a counter, or a
/// metric of the bench records (looked up in that order); the gate
/// fails when current exceeds baseline by more than max_regress_pct
/// percent (all gated quantities are lower-is-better).
struct GateSpec {
  std::string metric;
  double max_regress_pct = 0.0;
};

/// Parses "metric:pct" (e.g. "wall_seconds:10", "comm.allreduce.calls:0").
/// Returns false on malformed input.
bool parse_gate(const std::string& text, GateSpec& out);

enum class GateStatus { kPass, kFail, kMissing };

const char* to_string(GateStatus status);

/// Verdict of one gate on one matched record label.
struct GateResult {
  std::string metric;
  std::string label;  ///< record label; empty when no labels matched
  GateStatus status = GateStatus::kMissing;
  double baseline = 0.0;
  double current = 0.0;
  double change_pct = 0.0;
  double allowed_pct = 0.0;
};

/// CLI exit code: 2 if any gate is kMissing, else 1 if any failed,
/// else 0. Missing outranks fail so a typo'd metric never reads as a
/// mere regression.
int gate_exit_code(const std::vector<GateResult>& results);

class PerfReport {
 public:
  /// Ingests a trace: computes the per-phase work/wait table and the
  /// critical-path breakdown. Either overload may be called once.
  void add_trace(const Trace& trace);
  void add_trace(const json::Value& chrome_doc);

  /// Ingests the fresh run's lrt.bench/1 document / the committed
  /// baseline. Returns false when the schema field is wrong.
  bool add_bench(const json::Value& doc);
  bool add_baseline(const json::Value& doc);

  void add_gate(const GateSpec& gate) { gates_.push_back(gate); }

  /// Evaluates every gate against every record label present in both
  /// bench and baseline, and computes the counter deltas. Idempotent.
  void run_gates();

  const std::vector<GateResult>& gate_results() const { return gate_results_; }

  /// The report as an lrt.report/1 JSON document / as markdown.
  json::Value to_json() const;
  std::string to_markdown() const;

 private:
  struct BenchRecord {
    std::string label;
    std::vector<std::pair<std::string, double>> phases;
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static bool parse_bench(const json::Value& doc, std::string* name,
                          std::vector<BenchRecord>* records);
  /// phases -> counters -> metrics lookup; false when absent.
  static bool lookup(const BenchRecord& record, const std::string& metric,
                     double* value);

  bool has_trace_ = false;
  std::vector<PhaseWorkWait> phases_;
  CriticalPathReport critical_path_;

  bool has_bench_ = false;
  std::string bench_name_;
  std::vector<BenchRecord> bench_;
  bool has_baseline_ = false;
  std::string baseline_name_;
  std::vector<BenchRecord> baseline_;

  std::vector<GateSpec> gates_;
  std::vector<GateResult> gate_results_;

  struct CounterDelta {
    std::string label;
    std::string counter;
    double baseline = 0.0;
    double current = 0.0;
  };
  std::vector<CounterDelta> counter_deltas_;
};

}  // namespace lrt::obs
