#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/bench_report.hpp"

namespace lrt::obs {
namespace {

json::Value make_string(const std::string& s) {
  json::Value v;
  v.kind = json::Value::Kind::kString;
  v.string = s;
  return v;
}

json::Value make_number(double d) {
  json::Value v;
  v.kind = json::Value::Kind::kNumber;
  v.number = d;
  return v;
}

json::Value make_object() {
  json::Value v;
  v.kind = json::Value::Kind::kObject;
  return v;
}

json::Value make_array() {
  json::Value v;
  v.kind = json::Value::Kind::kArray;
  return v;
}

std::string format_seconds(double s) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", s);
  return buf;
}

std::string format_number(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool parse_gate(const std::string& text, GateSpec& out) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return false;
  }
  const std::string pct = text.substr(colon + 1);
  char* end = nullptr;
  const double value = std::strtod(pct.c_str(), &end);
  if (end == pct.c_str() || *end != '\0' || value < 0.0) return false;
  out.metric = text.substr(0, colon);
  out.max_regress_pct = value;
  return true;
}

const char* to_string(GateStatus status) {
  switch (status) {
    case GateStatus::kPass:
      return "pass";
    case GateStatus::kFail:
      return "fail";
    case GateStatus::kMissing:
      return "missing";
  }
  return "unknown";
}

int gate_exit_code(const std::vector<GateResult>& results) {
  bool failed = false;
  for (const GateResult& r : results) {
    if (r.status == GateStatus::kMissing) return 2;
    if (r.status == GateStatus::kFail) failed = true;
  }
  return failed ? 1 : 0;
}

void PerfReport::add_trace(const Trace& trace) {
  phases_ = work_wait_by_phase(trace);
  critical_path_ = critical_path(trace);
  has_trace_ = true;
}

void PerfReport::add_trace(const json::Value& chrome_doc) {
  add_trace(trace_from_chrome_json(chrome_doc));
}

bool PerfReport::parse_bench(const json::Value& doc, std::string* name,
                             std::vector<BenchRecord>* records) {
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kBenchSchema) {
    return false;
  }
  if (const json::Value* n = doc.find("name");
      n != nullptr && n->is_string()) {
    *name = n->string;
  }
  records->clear();
  const json::Value* recs = doc.find("records");
  if (recs == nullptr || !recs->is_array()) return true;  // empty report
  for (const json::Value& r : recs->array) {
    BenchRecord record;
    if (const json::Value* label = r.find("label");
        label != nullptr && label->is_string()) {
      record.label = label->string;
    }
    auto copy_numbers = [](const json::Value* obj,
                           std::vector<std::pair<std::string, double>>* dst) {
      if (obj == nullptr || !obj->is_object()) return;
      for (const auto& [key, value] : obj->object) {
        if (value.is_number()) dst->push_back({key, value.number});
      }
    };
    copy_numbers(r.find("phases"), &record.phases);
    copy_numbers(r.find("counters"), &record.counters);
    copy_numbers(r.find("metrics"), &record.metrics);
    records->push_back(std::move(record));
  }
  return true;
}

bool PerfReport::add_bench(const json::Value& doc) {
  has_bench_ = parse_bench(doc, &bench_name_, &bench_);
  return has_bench_;
}

bool PerfReport::add_baseline(const json::Value& doc) {
  has_baseline_ = parse_bench(doc, &baseline_name_, &baseline_);
  return has_baseline_;
}

bool PerfReport::lookup(const BenchRecord& record, const std::string& metric,
                        double* value) {
  for (const auto* section : {&record.phases, &record.counters,
                              &record.metrics}) {
    for (const auto& [key, v] : *section) {
      if (key == metric) {
        *value = v;
        return true;
      }
    }
  }
  return false;
}

void PerfReport::run_gates() {
  gate_results_.clear();
  counter_deltas_.clear();
  // Matched (current, baseline) record pairs by label, current order.
  std::vector<std::pair<const BenchRecord*, const BenchRecord*>> matched;
  for (const BenchRecord& cur : bench_) {
    for (const BenchRecord& base : baseline_) {
      if (cur.label == base.label) {
        matched.push_back({&cur, &base});
        break;
      }
    }
  }
  for (const GateSpec& gate : gates_) {
    if (matched.empty()) {
      GateResult r;
      r.metric = gate.metric;
      r.allowed_pct = gate.max_regress_pct;
      r.status = GateStatus::kMissing;
      gate_results_.push_back(std::move(r));
      continue;
    }
    for (const auto& [cur, base] : matched) {
      GateResult r;
      r.metric = gate.metric;
      r.label = cur->label;
      r.allowed_pct = gate.max_regress_pct;
      double cur_value = 0.0;
      double base_value = 0.0;
      if (!lookup(*cur, gate.metric, &cur_value) ||
          !lookup(*base, gate.metric, &base_value)) {
        r.status = GateStatus::kMissing;
      } else {
        r.baseline = base_value;
        r.current = cur_value;
        if (base_value > 0.0) {
          r.change_pct = (cur_value - base_value) / base_value * 100.0;
          r.status = r.change_pct > gate.max_regress_pct ? GateStatus::kFail
                                                         : GateStatus::kPass;
        } else {
          // Zero baseline: any growth is an infinite regression.
          r.change_pct = cur_value > 0.0 ? 100.0 : 0.0;
          r.status =
              cur_value > 0.0 ? GateStatus::kFail : GateStatus::kPass;
        }
      }
      gate_results_.push_back(std::move(r));
    }
  }
  // Counter deltas: counters present in both records of a matched pair
  // whose values differ.
  for (const auto& [cur, base] : matched) {
    for (const auto& [name, cur_value] : cur->counters) {
      for (const auto& [base_name, base_value] : base->counters) {
        if (base_name != name) continue;
        if (base_value != cur_value) {
          counter_deltas_.push_back(
              CounterDelta{cur->label, name, base_value, cur_value});
        }
        break;
      }
    }
  }
}

json::Value PerfReport::to_json() const {
  json::Value doc = make_object();
  doc.object.push_back({"schema", make_string(kReportSchema)});
  if (has_trace_) {
    json::Value phases = make_array();
    for (const PhaseWorkWait& p : phases_) {
      json::Value row = make_object();
      row.object.push_back({"name", make_string(p.name)});
      row.object.push_back({"count", make_number(static_cast<double>(p.count))});
      row.object.push_back({"ranks", make_number(static_cast<double>(p.ranks))});
      row.object.push_back({"work_seconds", make_number(p.work_seconds)});
      row.object.push_back({"wait_seconds", make_number(p.wait_seconds)});
      row.object.push_back(
          {"max_rank_seconds", make_number(p.max_rank_seconds)});
      row.object.push_back(
          {"mean_rank_seconds", make_number(p.mean_rank_seconds)});
      row.object.push_back({"imbalance", make_number(p.imbalance)});
      phases.array.push_back(std::move(row));
    }
    doc.object.push_back({"phases", std::move(phases)});

    json::Value cp = make_object();
    cp.object.push_back(
        {"total_seconds", make_number(critical_path_.total_seconds)});
    cp.object.push_back(
        {"attributed_seconds", make_number(critical_path_.attributed_seconds)});
    cp.object.push_back(
        {"hops", make_number(static_cast<double>(critical_path_.hops))});
    json::Value cp_phases = make_array();
    for (const CriticalPhase& p : critical_path_.phases) {
      json::Value row = make_object();
      row.object.push_back({"name", make_string(p.name)});
      row.object.push_back({"work_seconds", make_number(p.work_seconds)});
      row.object.push_back({"wait_seconds", make_number(p.wait_seconds)});
      row.object.push_back({"share_pct", make_number(p.share_pct)});
      cp_phases.array.push_back(std::move(row));
    }
    cp.object.push_back({"phases", std::move(cp_phases)});
    doc.object.push_back({"critical_path", std::move(cp)});
  }
  if (has_bench_) {
    doc.object.push_back({"bench", make_string(bench_name_)});
  }
  if (has_baseline_) {
    doc.object.push_back({"baseline", make_string(baseline_name_)});
  }
  if (!gate_results_.empty() || !gates_.empty()) {
    json::Value gates = make_array();
    for (const GateResult& r : gate_results_) {
      json::Value row = make_object();
      row.object.push_back({"metric", make_string(r.metric)});
      row.object.push_back({"label", make_string(r.label)});
      row.object.push_back({"baseline", make_number(r.baseline)});
      row.object.push_back({"current", make_number(r.current)});
      row.object.push_back({"change_pct", make_number(r.change_pct)});
      row.object.push_back({"allowed_pct", make_number(r.allowed_pct)});
      row.object.push_back({"status", make_string(to_string(r.status))});
      gates.array.push_back(std::move(row));
    }
    doc.object.push_back({"gates", std::move(gates)});
    const int code = gate_exit_code(gate_results_);
    doc.object.push_back(
        {"verdict", make_string(code == 0   ? "pass"
                                : code == 1 ? "fail"
                                            : "missing")});
  }
  if (!counter_deltas_.empty()) {
    json::Value deltas = make_array();
    for (const CounterDelta& d : counter_deltas_) {
      json::Value row = make_object();
      row.object.push_back({"label", make_string(d.label)});
      row.object.push_back({"counter", make_string(d.counter)});
      row.object.push_back({"baseline", make_number(d.baseline)});
      row.object.push_back({"current", make_number(d.current)});
      row.object.push_back({"delta", make_number(d.current - d.baseline)});
      deltas.array.push_back(std::move(row));
    }
    doc.object.push_back({"counter_deltas", std::move(deltas)});
  }
  return doc;
}

std::string PerfReport::to_markdown() const {
  std::string md = "# lrt-report\n";
  if (has_trace_) {
    md += "\n## Phases (work / wait / imbalance)\n\n";
    md += "| phase | count | ranks | work s | wait s | imbalance |\n";
    md += "|---|---|---|---|---|---|\n";
    for (const PhaseWorkWait& p : phases_) {
      md += "| " + p.name + " | " + std::to_string(p.count) + " | " +
            std::to_string(p.ranks) + " | " + format_seconds(p.work_seconds) +
            " | " + format_seconds(p.wait_seconds) + " | " +
            format_number(p.imbalance) + " |\n";
    }
    md += "\n## Critical path\n\n";
    md += "- total: " + format_seconds(critical_path_.total_seconds) +
          " s, attributed: " +
          format_seconds(critical_path_.attributed_seconds) + " s, hops: " +
          std::to_string(critical_path_.hops) + "\n\n";
    md += "| phase | work s | wait s | share % |\n";
    md += "|---|---|---|---|\n";
    for (const CriticalPhase& p : critical_path_.phases) {
      md += "| " + p.name + " | " + format_seconds(p.work_seconds) + " | " +
            format_seconds(p.wait_seconds) + " | " +
            format_number(p.share_pct) + " |\n";
    }
  }
  if (!counter_deltas_.empty()) {
    md += "\n## Counter deltas vs baseline\n\n";
    md += "| label | counter | baseline | current | delta |\n";
    md += "|---|---|---|---|---|\n";
    for (const CounterDelta& d : counter_deltas_) {
      md += "| " + d.label + " | " + d.counter + " | " +
            format_number(d.baseline) + " | " + format_number(d.current) +
            " | " + format_number(d.current - d.baseline) + " |\n";
    }
  }
  if (!gate_results_.empty()) {
    md += "\n## Gates\n\n";
    md += "| metric | label | baseline | current | change % | allowed % | "
          "status |\n";
    md += "|---|---|---|---|---|---|---|\n";
    for (const GateResult& r : gate_results_) {
      md += "| " + r.metric + " | " + r.label + " | " +
            format_number(r.baseline) + " | " + format_number(r.current) +
            " | " + format_number(r.change_pct) + " | " +
            format_number(r.allowed_pct) + " | " + to_string(r.status) +
            " |\n";
    }
    const int code = gate_exit_code(gate_results_);
    md += std::string("\nverdict: ") +
          (code == 0 ? "pass" : code == 1 ? "FAIL" : "MISSING") + "\n";
  }
  return md;
}

}  // namespace lrt::obs
