#include "obs/bench_report.hpp"

#include <cstdlib>
#include <ctime>
#include <fstream>

#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace lrt::obs {
namespace {

// Sanitizer presence is part of build metadata: perf numbers from
// sanitized builds are not comparable to plain ones.
std::string sanitizer_string() {
  std::string out;
#if defined(__SANITIZE_ADDRESS__)
  out += "address";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  out += "address";
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  if (!out.empty()) out += ",";
  out += "thread";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  if (!out.empty()) out += ",";
  out += "thread";
#endif
#endif
  return out.empty() ? "none" : out;
}

template <typename T>
void append_number_members(
    std::string& out, const char* key,
    const std::vector<std::pair<std::string, T>>& entries) {
  out += ",";
  out += json::quote(key);
  out += ":{";
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out.push_back(',');
    first = false;
    out += json::quote(name);
    out.push_back(':');
    out += json::number(static_cast<double>(value));
  }
  out += "}";
}

}  // namespace

BenchReport::Record& BenchReport::Record::param(const std::string& key,
                                                const std::string& value) {
  params_.emplace_back(key, json::quote(value));
  return *this;
}

BenchReport::Record& BenchReport::Record::param(const std::string& key,
                                                long long value) {
  params_.emplace_back(key, json::number(static_cast<double>(value)));
  return *this;
}

BenchReport::Record& BenchReport::Record::param(const std::string& key,
                                                double value) {
  params_.emplace_back(key, json::number(value));
  return *this;
}

BenchReport::Record& BenchReport::Record::phase(const std::string& name,
                                                double seconds) {
  phases_.emplace_back(name, seconds);
  return *this;
}

BenchReport::Record& BenchReport::Record::counter(const std::string& name,
                                                  long long value) {
  counters_.emplace_back(name, value);
  return *this;
}

BenchReport::Record& BenchReport::Record::metric(const std::string& key,
                                                 double value) {
  metrics_.emplace_back(key, value);
  return *this;
}

BenchReport::Record& BenchReport::Record::counters_from_registry() {
  for (const auto& [name, value] : snapshot_counters()) {
    counters_.emplace_back(name, value);
  }
  return *this;
}

void BenchReport::meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

BenchReport::Record& BenchReport::record(std::string label) {
  records_.emplace_back(std::move(label));
  return records_.back();
}

std::string BenchReport::json() const {
  std::string out = "{\"schema\":";
  out += json::quote(kBenchSchema);
  out += ",\"name\":";
  out += json::quote(name_);
  out += ",\"unix_time\":";
  out += json::number(static_cast<double>(std::time(nullptr)));
  out += ",\"build\":{\"compiler\":";
  out += json::quote(__VERSION__);
  out += ",\"cplusplus\":";
  out += json::number(static_cast<double>(__cplusplus));
  out += ",\"sanitizers\":";
  out += json::quote(sanitizer_string());
  out += "},\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    if (!first) out.push_back(',');
    first = false;
    out += json::quote(key);
    out.push_back(':');
    out += json::quote(value);
  }
  out += "},\"records\":[";
  first = true;
  for (const Record& r : records_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"label\":";
    out += json::quote(r.label_);
    out += ",\"params\":{";
    bool pf = true;
    for (const auto& [key, encoded] : r.params_) {
      if (!pf) out.push_back(',');
      pf = false;
      out += json::quote(key);
      out.push_back(':');
      out += encoded;
    }
    out += "}";
    append_number_members(out, "phases", r.phases_);
    append_number_members(out, "counters", r.counters_);
    append_number_members(out, "metrics", r.metrics_);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string BenchReport::default_path() const {
  std::string dir;
  if (const char* env = std::getenv("LRT_BENCH_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
    if (dir.back() != '/') dir.push_back('/');
  }
  return dir + "BENCH_" + name_ + ".json";
}

bool BenchReport::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace lrt::obs
