// Machine-readable benchmark output (the BENCH_*.json trajectory).
//
// A BenchReport is a named collection of records, each carrying params
// (what was run), phases (seconds per phase), counters (event totals,
// e.g. comm.alltoallv.bytes), and metrics (everything else). write()
// emits schema-versioned JSON so successive runs of the same bench are
// comparable across the repo's history; the schema is documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace lrt::obs {

/// Schema identifier stamped into every report; bump on breaking layout
/// changes.
inline constexpr const char* kBenchSchema = "lrt.bench/1";

class BenchReport {
 public:
  /// One benchmark configuration's results.
  class Record {
   public:
    explicit Record(std::string label) : label_(std::move(label)) {}

    Record& param(const std::string& key, const std::string& value);
    Record& param(const std::string& key, long long value);
    Record& param(const std::string& key, double value);
    Record& phase(const std::string& name, double seconds);
    Record& counter(const std::string& name, long long value);
    Record& metric(const std::string& key, double value);

    /// Copies the current obs counter registry snapshot into this record.
    Record& counters_from_registry();

   private:
    friend class BenchReport;
    std::string label_;
    std::vector<std::pair<std::string, std::string>> params_;  // pre-encoded
    std::vector<std::pair<std::string, double>> phases_;
    std::vector<std::pair<std::string, long long>> counters_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  /// `name` becomes the default output file BENCH_<name>.json.
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Top-level free-form metadata (grid size, notes, ...).
  void meta(const std::string& key, const std::string& value);

  /// Appends a record; the reference stays valid for the report's
  /// lifetime (records live in a deque).
  Record& record(std::string label);

  /// The full report as a JSON document.
  std::string json() const;

  /// BENCH_<name>.json under $LRT_BENCH_DIR, or the working directory
  /// when unset.
  std::string default_path() const;

  /// Writes json() to `path` (or default_path()). Returns false if the
  /// file could not be opened.
  bool write(const std::string& path) const;
  bool write() const { return write(default_path()); }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::deque<Record> records_;
};

}  // namespace lrt::obs
