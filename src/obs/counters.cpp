#include "obs/counters.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace lrt::obs {
namespace {

// Counters live in unique_ptrs so references survive map rehashing; the
// registry itself is a Meyers singleton so any static-initialization-time
// caller finds it constructed.
struct CounterRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
};

CounterRegistry& registry() {
  static CounterRegistry instance;
  return instance;
}

}  // namespace

Counter& counter(const std::string& name) {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::unique_ptr<Counter>& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

std::vector<std::pair<std::string, long long>> snapshot_counters() {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::pair<std::string, long long>> out;
  out.reserve(reg.counters.size());
  for (const auto& [name, c] : reg.counters) {
    out.emplace_back(name, c->value());
  }
  return out;  // std::map iteration is already name-ordered.
}

void reset_counters() {
  CounterRegistry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& [name, c] : reg.counters) c->reset();
}

namespace detail {

void touch_counter_registry() { (void)registry(); }

}  // namespace detail
}  // namespace lrt::obs
