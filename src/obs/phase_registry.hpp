// GENERATED FILE — DO NOT EDIT.
//
// Registered phase/span name vocabulary, generated from
// src/obs/phases.def by `lrt-analyze gen-phases --write`. The
// phase-registry-sync pass fails CI when this file and the def
// drift apart; the phase-registry pass requires every
// obs::Span / ScopedPhase / PhaseTimer literal and every
// `validate_trace --require-phase` argument to name an entry.
#pragma once

#include <cstddef>
#include <string_view>

namespace lrt::obs::phase {

inline constexpr const char* kKmeans = "kmeans";  // K-Means point selection (Fig. 8)
inline constexpr const char* kFft = "fft";  // FFT work, forward+inverse (Fig. 8)
inline constexpr const char* kMpi = "mpi";  // communication: transpose/alltoallv + allreduce (Fig. 8)
inline constexpr const char* kGemm = "gemm";  // dense GEMM + allreduce epilogue (Fig. 8)
inline constexpr const char* kDiag = "diag";  // (dist-)eigensolve / subspace diagonalization (Fig. 8)
inline constexpr const char* kPairProduct = "pair_product";  // orbital pair-product assembly (Fig. 8)
inline constexpr const char* kSelectPoints = "select_points";  // ISDF interpolation-point selection (driver profiler)
inline constexpr const char* kInterpVectors = "interp_vectors";  // ISDF interpolation-vector fit (driver profiler)
inline constexpr const char* kFftFft3d = "fft.fft3d";  // one 3-D FFT (all pencils)
inline constexpr const char* kFftFft3dAxis0 = "fft.fft3d.axis0";  // 3-D FFT axis-0 pass (stride n1*n2, batched)
inline constexpr const char* kFftFft3dAxis1 = "fft.fft3d.axis1";  // 3-D FFT axis-1 pass (stride n2, per-slab batches)
inline constexpr const char* kFftFft3dAxis2 = "fft.fft3d.axis2";  // 3-D FFT axis-2 pass (contiguous lines, batched)
inline constexpr const char* kIsdfSelectPoints = "isdf.select_points";  // point selection entry (QRCP or K-Means)
inline constexpr const char* kIsdfInterpVectors = "isdf.interp_vectors";  // least-squares interpolation vectors
inline constexpr const char* kIsdfPointsKmeans = "isdf.points.kmeans";  // weighted K-Means selector
inline constexpr const char* kIsdfPointsQrcp = "isdf.points.qrcp";  // QRCP selector
inline constexpr const char* kFtCheckpointSave = "ft.checkpoint.save";  // checkpoint serialization + atomic write
inline constexpr const char* kFtCheckpointLoad = "ft.checkpoint.load";  // checkpoint parse + CRC validation
inline constexpr const char* kKmeansDist = "kmeans.dist";  // distributed K-Means iteration loop
inline constexpr const char* kKmeansLloyd = "kmeans.lloyd";  // serial weighted K-Means Lloyd loop
inline constexpr const char* kLaLobpcg = "la.lobpcg";  // serial LOBPCG solve
inline constexpr const char* kParDistLobpcg = "par.dist_lobpcg";  // distributed LOBPCG solve
inline constexpr const char* kParGramReduceMonolithic = "par.gram_reduce.monolithic";  // Gram reduction, single allreduce
inline constexpr const char* kParGramReducePipelined = "par.gram_reduce.pipelined";  // Gram reduction, pipelined allreduce
inline constexpr const char* kParSumma = "par.summa";  // SUMMA distributed GEMM
inline constexpr const char* kParTranspose = "par.transpose";  // pencil transpose (alltoallv)
inline constexpr const char* kParOverlapPack = "par.overlap.pack";  // slab packing overlapped with an i_* exchange
inline constexpr const char* kParOverlapWait = "par.overlap.wait";  // drain of a nonblocking collective's receives
inline constexpr const char* kParDistFft3d = "par.dist_fft3d";  // distributed 3-D FFT (slab/pencil, overlapped)
inline constexpr const char* kBarrier = "barrier";  // dissemination barrier
inline constexpr const char* kBcast = "bcast";  // binomial-tree broadcast
inline constexpr const char* kReduce = "reduce";  // binomial-tree reduction
inline constexpr const char* kAllreduce = "allreduce";  // single-round fold + butterfly allreduce
inline constexpr const char* kAlltoall = "alltoall";  // shifted pairwise exchange
inline constexpr const char* kAlltoallv = "alltoallv";  // variable-count pairwise exchange
inline constexpr const char* kAllgather = "allgather";  // ring allgather
inline constexpr const char* kAllgatherv = "allgatherv";  // variable-count ring allgather
inline constexpr const char* kGather = "gather";  // root gather
inline constexpr const char* kScatter = "scatter";  // root scatter
inline constexpr const char* kSplit = "split";  // communicator split (allgatherv composite)
inline constexpr const char* kIAlltoallv = "i_alltoallv";  // nonblocking alltoallv issue (sends posted, recvs deferred)
inline constexpr const char* kIAllgatherv = "i_allgatherv";  // nonblocking allgatherv issue (direct exchange)
inline constexpr const char* kP2p = "p2p";  // user point-to-point send/recv outside any collective
inline constexpr const char* kBarrierWait = "barrier.wait";  // barrier: straggler wait
inline constexpr const char* kBarrierXfer = "barrier.xfer";  // barrier: exchange rounds
inline constexpr const char* kBcastWait = "bcast.wait";  // bcast: straggler wait
inline constexpr const char* kBcastXfer = "bcast.xfer";  // bcast: tree transfer
inline constexpr const char* kReduceWait = "reduce.wait";  // reduce: straggler wait
inline constexpr const char* kReduceXfer = "reduce.xfer";  // reduce: tree transfer
inline constexpr const char* kAllreduceWait = "allreduce.wait";  // allreduce: straggler wait
inline constexpr const char* kAllreduceXfer = "allreduce.xfer";  // allreduce: fold/butterfly transfer
inline constexpr const char* kAlltoallWait = "alltoall.wait";  // alltoall: straggler wait
inline constexpr const char* kAlltoallXfer = "alltoall.xfer";  // alltoall: pairwise transfer
inline constexpr const char* kAlltoallvWait = "alltoallv.wait";  // alltoallv: straggler wait
inline constexpr const char* kAlltoallvXfer = "alltoallv.xfer";  // alltoallv: pairwise transfer
inline constexpr const char* kAllgatherWait = "allgather.wait";  // allgather: straggler wait
inline constexpr const char* kAllgatherXfer = "allgather.xfer";  // allgather: ring transfer
inline constexpr const char* kAllgathervWait = "allgatherv.wait";  // allgatherv: straggler wait
inline constexpr const char* kAllgathervXfer = "allgatherv.xfer";  // allgatherv: ring transfer
inline constexpr const char* kGatherWait = "gather.wait";  // gather: straggler wait
inline constexpr const char* kGatherXfer = "gather.xfer";  // gather: root transfer
inline constexpr const char* kScatterWait = "scatter.wait";  // scatter: straggler wait
inline constexpr const char* kScatterXfer = "scatter.xfer";  // scatter: root transfer
inline constexpr const char* kSplitWait = "split.wait";  // split: straggler wait
inline constexpr const char* kSplitXfer = "split.xfer";  // split: composite transfer
inline constexpr const char* kIAlltoallvWait = "i_alltoallv.wait";  // i_alltoallv issue: straggler wait
inline constexpr const char* kIAlltoallvXfer = "i_alltoallv.xfer";  // i_alltoallv issue: send posting
inline constexpr const char* kIAllgathervWait = "i_allgatherv.wait";  // i_allgatherv issue: straggler wait
inline constexpr const char* kIAllgathervXfer = "i_allgatherv.xfer";  // i_allgatherv issue: send posting

inline constexpr const char* kAll[] = {
    kKmeans,
    kFft,
    kMpi,
    kGemm,
    kDiag,
    kPairProduct,
    kSelectPoints,
    kInterpVectors,
    kFftFft3d,
    kFftFft3dAxis0,
    kFftFft3dAxis1,
    kFftFft3dAxis2,
    kIsdfSelectPoints,
    kIsdfInterpVectors,
    kIsdfPointsKmeans,
    kIsdfPointsQrcp,
    kFtCheckpointSave,
    kFtCheckpointLoad,
    kKmeansDist,
    kKmeansLloyd,
    kLaLobpcg,
    kParDistLobpcg,
    kParGramReduceMonolithic,
    kParGramReducePipelined,
    kParSumma,
    kParTranspose,
    kParOverlapPack,
    kParOverlapWait,
    kParDistFft3d,
    kBarrier,
    kBcast,
    kReduce,
    kAllreduce,
    kAlltoall,
    kAlltoallv,
    kAllgather,
    kAllgatherv,
    kGather,
    kScatter,
    kSplit,
    kIAlltoallv,
    kIAllgatherv,
    kP2p,
    kBarrierWait,
    kBarrierXfer,
    kBcastWait,
    kBcastXfer,
    kReduceWait,
    kReduceXfer,
    kAllreduceWait,
    kAllreduceXfer,
    kAlltoallWait,
    kAlltoallXfer,
    kAlltoallvWait,
    kAlltoallvXfer,
    kAllgatherWait,
    kAllgatherXfer,
    kAllgathervWait,
    kAllgathervXfer,
    kGatherWait,
    kGatherXfer,
    kScatterWait,
    kScatterXfer,
    kSplitWait,
    kSplitXfer,
    kIAlltoallvWait,
    kIAlltoallvXfer,
    kIAllgathervWait,
    kIAllgathervXfer,
};

inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);

/// True when `name` is a registered phase/span name.
constexpr bool is_registered(std::string_view name) {
  for (const char* phase : kAll) {
    if (name == phase) return true;
  }
  return false;
}

}  // namespace lrt::obs::phase
