#include "obs/obs.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/counters.hpp"
#include "obs/json.hpp"

namespace lrt::obs {
namespace {

// One closed span. The name is copied inline at record time: call sites
// may pass short-lived std::string::c_str() (ScopedPhase does), so a
// stored pointer could dangle by export time.
struct SpanRecord {
  char name[48];
  long long start_ns;
  long long end_ns;
  int rank;
};

struct ThreadBuffer {
  std::vector<SpanRecord> records;
  std::vector<detail::FlowRecord> flows;
};

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local int t_rank = -1;

// Owns every thread's span buffer plus the at-exit export config. A
// Meyers singleton: the destructor runs during static teardown, after
// main() — by then all rank threads are joined (par::run joins before
// returning), so walking the buffers is safe. The constructor touches
// the counter registry first so counters are constructed before — hence
// destroyed after — this object, keeping the exit report's counter reads
// valid.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::string trace_path;       // LRT_TRACE destination; empty = no export
  bool profile_on_exit = false; // LRT_PROFILE: stderr report at exit
  long long epoch_ns = 0;       // trace timestamps are relative to this

  Registry() {
    detail::touch_counter_registry();
    epoch_ns = detail::now_ns();
    if (const char* path = std::getenv("LRT_TRACE");
        path != nullptr && *path != '\0') {
      trace_path = path;
      detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
    }
    if (const char* profile = std::getenv("LRT_PROFILE");
        profile != nullptr && *profile != '\0' &&
        std::strcmp(profile, "0") != 0) {
      profile_on_exit = true;
      detail::g_tracing_enabled.store(true, std::memory_order_relaxed);
    }
  }

  ~Registry();
};

Registry& registry() {
  static Registry instance;
  return instance;
}

// Force the registry (and with it LRT_TRACE/LRT_PROFILE parsing) into
// existence during static initialization, before main() can spawn
// threads.
[[maybe_unused]] const bool g_obs_init = [] {
  (void)registry();
  return true;
}();

ThreadBuffer& thread_buffer() {
  if (t_buffer == nullptr) {
    Registry& reg = registry();
    auto owned = std::make_unique<ThreadBuffer>();
    t_buffer = owned.get();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.push_back(std::move(owned));
  }
  return *t_buffer;
}

// Chrome trace event writer. ts/dur are microseconds (double); tid is
// the simulated rank so chrome://tracing shows one row per rank.
void append_chrome_event(std::string& out, const SpanRecord& r,
                         long long epoch_ns, long long pid) {
  const double ts_us = static_cast<double>(r.start_ns - epoch_ns) * 1e-3;
  const double dur_us = static_cast<double>(r.end_ns - r.start_ns) * 1e-3;
  const long long tid = r.rank < 0 ? kNonRankTid : r.rank;
  char buf[64];
  out += "{\"name\":";
  out += json::quote(r.name);
  out += ",\"cat\":\"lrt\",\"ph\":\"X\",\"ts\":";
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  out += buf;
  out += ",\"dur\":";
  std::snprintf(buf, sizeof buf, "%.3f", dur_us);
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"pid\":%lld,\"tid\":%lld}", pid, tid);
  out += buf;
}

// Flow events pair a send ('s') with its receive completion ('f', with
// bp:"e" so the arrow lands at the end of the enclosing slice). The id
// embeds the pid so merged multi-process traces never collide; the 'f'
// event additionally carries the matched send/wait-start stamps in args
// so trace_from_chrome_json can reconstruct the causal edge without
// re-pairing events.
void append_flow_event(std::string& out, const detail::FlowRecord& f,
                       long long epoch_ns, long long pid) {
  const double ts_us = static_cast<double>(f.ts_ns - epoch_ns) * 1e-3;
  const long long tid = f.rank < 0 ? kNonRankTid : f.rank;
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"%c\",%s"
                "\"id\":\"%lld:%lld:%lld:%d:%d:%d:%lld\",\"ts\":",
                f.phase, f.phase == 'f' ? "\"bp\":\"e\"," : "", pid, f.run,
                f.context, f.src, f.dst, f.tag, f.seq);
  out += buf;
  std::snprintf(buf, sizeof buf, "%.3f", ts_us);
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"pid\":%lld,\"tid\":%lld", pid, tid);
  out += buf;
  if (f.phase == 'f') {
    const double send_us = static_cast<double>(f.send_ns - epoch_ns) * 1e-3;
    const double wait_us =
        static_cast<double>((f.recv_start_ns >= 0 ? f.recv_start_ns : f.ts_ns) -
                            epoch_ns) *
        1e-3;
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"send_ts\":%.3f,\"wait_start_ts\":%.3f}",
                  send_us, wait_us);
    out += buf;
  }
  out.push_back('}');
}

void append_thread_name_event(std::string& out, long long tid,
                              const std::string& label, long long pid) {
  char buf[96];
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
  std::snprintf(buf, sizeof buf, "%lld,\"tid\":%lld,\"args\":{\"name\":",
                pid, tid);
  out += buf;
  out += json::quote(label);
  out += "}}";
}

// Serializes this process's spans as Chrome trace events. When
// `merge_with` holds a previous trace's traceEvents, they are re-emitted
// first so serial processes sharing one LRT_TRACE path accumulate into a
// single loadable file (ctest runs one process per test).
std::string render_chrome_trace(Registry& reg,
                                const json::Value* merge_with) {
  const long long pid = static_cast<long long>(::getpid());
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  if (merge_with != nullptr) {
    for (const json::Value& event : merge_with->array) {
      if (!first) out.push_back(',');
      first = false;
      out += json::dump(event);
    }
  }
  std::vector<long long> tids_seen;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      for (const SpanRecord& r : buffer->records) {
        if (!first) out.push_back(',');
        first = false;
        append_chrome_event(out, r, reg.epoch_ns, pid);
        const long long tid = r.rank < 0 ? kNonRankTid : r.rank;
        if (std::find(tids_seen.begin(), tids_seen.end(), tid) ==
            tids_seen.end()) {
          tids_seen.push_back(tid);
        }
      }
      for (const detail::FlowRecord& f : buffer->flows) {
        if (!first) out.push_back(',');
        first = false;
        append_flow_event(out, f, reg.epoch_ns, pid);
      }
    }
  }
  for (const long long tid : tids_seen) {
    if (!first) out.push_back(',');
    first = false;
    const std::string label =
        tid == kNonRankTid ? "main" : "rank " + std::to_string(tid);
    append_thread_name_event(out, tid, label, pid);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void write_profile_report(const std::vector<PhaseStats>& stats) {
  std::ostringstream os;
  os << "[obs] per-phase report (seconds)\n";
  os << "  " << "phase                          count     total       min"
     << "       max  imbalance\n";
  for (const PhaseStats& s : stats) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-28s %7lld %9.4f %9.4f %9.4f %10.2f\n", s.name.c_str(),
                  s.count, s.total_seconds, s.min_rank_seconds,
                  s.max_rank_seconds, s.imbalance);
    os << line;
  }
  const auto counters = snapshot_counters();
  if (!counters.empty()) {
    os << "[obs] counters\n";
    for (const auto& [name, value] : counters) {
      char line[160];
      std::snprintf(line, sizeof line, "  %-40s %lld\n", name.c_str(), value);
      os << line;
    }
  }
  std::fputs(os.str().c_str(), stderr);
}

Registry::~Registry() {
  if (!trace_path.empty()) {
    // Read-merge-rewrite under an exclusive flock so concurrent exiting
    // processes (parallel ctest with one shared LRT_TRACE path) serialize
    // instead of clobbering each other's read-modify-write — each process
    // sees the previous writer's completed merge.
    const int fd = ::open(trace_path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      std::fprintf(stderr, "[obs] cannot write trace to '%s'\n",
                   trace_path.c_str());
    } else {
      while (::flock(fd, LOCK_EX) != 0 && errno == EINTR) {}
      std::string previous;
      char chunk[1 << 16];
      ssize_t n;
      while ((n = ::read(fd, chunk, sizeof chunk)) > 0) {
        previous.append(chunk, static_cast<std::size_t>(n));
      }
      json::Value existing;
      const json::Value* merge_with = nullptr;
      if (!previous.empty()) {
        try {
          existing = json::parse(previous);
          if (const json::Value* events = existing.find("traceEvents");
              events != nullptr && events->is_array()) {
            merge_with = events;
          }
        } catch (...) {
          // Unreadable previous trace: overwrite it.
        }
      }
      const std::string rendered = render_chrome_trace(*this, merge_with);
      if (::ftruncate(fd, 0) == 0 && ::lseek(fd, 0, SEEK_SET) == 0) {
        std::size_t written = 0;
        while (written < rendered.size()) {
          const ssize_t w = ::write(fd, rendered.data() + written,
                                    rendered.size() - written);
          if (w <= 0) {
            if (errno == EINTR) continue;
            std::fprintf(stderr, "[obs] short write to '%s'\n",
                         trace_path.c_str());
            break;
          }
          written += static_cast<std::size_t>(w);
        }
      }
      ::close(fd);  // releases the flock
    }
  }
  if (profile_on_exit) write_profile_report(aggregate_phases());
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void record_span(const char* name, long long start_ns, long long end_ns) {
  ThreadBuffer& buffer = thread_buffer();
  SpanRecord r;
  std::snprintf(r.name, sizeof r.name, "%s", name);
  r.start_ns = start_ns;
  r.end_ns = end_ns;
  r.rank = t_rank;
  buffer.records.push_back(r);
}

void record_flow(const FlowRecord& flow) {
  ThreadBuffer& buffer = thread_buffer();
  FlowRecord f = flow;
  f.rank = t_rank;
  buffer.flows.push_back(f);
}

std::vector<SpanSnapshot> snapshot_spans() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SpanSnapshot> out;
  for (const auto& buffer : reg.buffers) {
    for (const SpanRecord& r : buffer->records) {
      SpanSnapshot s;
      s.name = r.name;
      s.rank = r.rank;
      s.start_ns = r.start_ns;
      s.end_ns = r.end_ns;
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<FlowRecord> snapshot_flows() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<FlowRecord> out;
  for (const auto& buffer : reg.buffers) {
    out.insert(out.end(), buffer->flows.begin(), buffer->flows.end());
  }
  return out;
}

}  // namespace detail

long long vm_hwm_bytes() {
#ifdef __linux__
  std::ifstream in("/proc/self/status");
  if (!in) return -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      // Format: "VmHWM:   123456 kB"
      long long kb = 0;
      if (std::sscanf(line.c_str() + 6, "%lld", &kb) == 1) return kb * 1024;
      return -1;
    }
  }
  return -1;
#else
  return -1;
#endif
}

void set_tracing_enabled(bool enabled) {
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

int thread_rank() { return t_rank; }

void set_thread_rank(int rank) { t_rank = rank; }

std::vector<PhaseStats> aggregate_phases() {
  Registry& reg = registry();
  // name -> rank -> (count, total_ns), names kept in first-seen order.
  struct RankTotals {
    std::map<int, std::pair<long long, long long>> by_rank;
  };
  std::map<std::string, RankTotals> totals;
  std::vector<std::string> order;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buffer : reg.buffers) {
      for (const SpanRecord& r : buffer->records) {
        auto [it, inserted] = totals.try_emplace(r.name);
        if (inserted) order.push_back(r.name);
        auto& [count, total_ns] = it->second.by_rank[r.rank];
        count += 1;
        total_ns += r.end_ns - r.start_ns;
      }
    }
  }
  std::vector<PhaseStats> out;
  out.reserve(order.size());
  for (const std::string& name : order) {
    const RankTotals& rt = totals.at(name);
    PhaseStats s;
    s.name = name;
    s.ranks = static_cast<int>(rt.by_rank.size());
    bool first = true;
    for (const auto& [rank, entry] : rt.by_rank) {
      const auto& [count, total_ns] = entry;
      const double seconds = static_cast<double>(total_ns) * 1e-9;
      s.count += count;
      s.total_seconds += seconds;
      if (first || seconds < s.min_rank_seconds) s.min_rank_seconds = seconds;
      if (first || seconds > s.max_rank_seconds) s.max_rank_seconds = seconds;
      first = false;
    }
    s.mean_rank_seconds = s.total_seconds / static_cast<double>(s.ranks);
    s.imbalance = s.mean_rank_seconds > 0.0
                      ? s.max_rank_seconds / s.mean_rank_seconds
                      : 1.0;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t span_count() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::size_t n = 0;
  for (const auto& buffer : reg.buffers) n += buffer->records.size();
  return n;
}

void reset_trace() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    buffer->records.clear();
    buffer->flows.clear();
  }
}

bool write_chrome_trace(const std::string& path) {
  const std::string rendered = render_chrome_trace(registry(), nullptr);
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << rendered;
  return true;
}

void PhaseAccumulator::add(const std::string& name, double seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = totals_.try_emplace(name, 0.0);
  if (inserted) order_.push_back(name);
  it->second += seconds;
}

double PhaseAccumulator::total(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

double PhaseAccumulator::grand_total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0.0;
  for (const auto& [name, secs] : totals_) sum += secs;
  return sum;
}

std::vector<std::string> PhaseAccumulator::phases() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return order_;
}

void PhaseAccumulator::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
  order_.clear();
}

}  // namespace lrt::obs
