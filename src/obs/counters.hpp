// Named monotonic performance counters.
//
// A Counter is a relaxed std::atomic<long long>; the registry hands out
// process-lifetime stable references by name. Hot paths cache the
// reference (typically in a function-local static) so the per-event cost
// is a single relaxed fetch_add — counters are always on, there is no
// enable flag. Snapshots are taken by benches (obs::BenchReport) and by
// the LRT_PROFILE exit report; see docs/OBSERVABILITY.md for the names
// the library itself maintains (comm.*.bytes/calls, fft.*, la.gemm.*).
#pragma once

#include <atomic>
#include <string>
#include <utility>
#include <vector>

namespace lrt::obs {

/// Monotonic counter. add() is safe from any thread.
class Counter {
 public:
  void add(long long delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the counter to `v` if `v` is larger (high-water-mark
  /// semantics, e.g. mem.hwm.bytes). Safe from any thread.
  void record_max(long long v) {
    long long cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  long long value() const { return value_.load(std::memory_order_relaxed); }

  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// The counter registered under `name`, created on first use. The
/// returned reference stays valid for the process lifetime; cache it on
/// hot paths instead of looking up per call.
Counter& counter(const std::string& name);

/// (name, value) of every registered counter, ordered by name.
std::vector<std::pair<std::string, long long>> snapshot_counters();

/// Zeroes every registered counter (benches isolate runs with this).
void reset_counters();

namespace detail {

/// Forces the registry into existence; the tracer calls this on startup
/// so the counter registry is destroyed after it (the exit report reads
/// counters).
void touch_counter_registry();

}  // namespace detail
}  // namespace lrt::obs
