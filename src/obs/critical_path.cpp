#include "obs/critical_path.hpp"

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "obs/obs.hpp"

namespace lrt::obs {
namespace {

// One outermost span interval on a rank row. Inner (nested) spans are
// refinements of the same wall time; attribution always goes to the
// outermost name so the per-phase totals tile the row without double
// counting.
struct Interval {
  std::string name;
  long long start_ns = 0;
  long long end_ns = 0;
};

using WaitUnion = std::vector<std::pair<long long, long long>>;

// Spans on one thread nest (RAII), so after sorting by (start asc, end
// desc) an outermost span is exactly one that starts at or after the
// previous outermost span's end.
std::map<long long, std::vector<Interval>> outermost_by_tid(
    const std::vector<TraceSpan>& spans) {
  std::map<long long, std::vector<const TraceSpan*>> by_tid;
  for (const TraceSpan& s : spans) by_tid[s.tid].push_back(&s);
  std::map<long long, std::vector<Interval>> out;
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(),
              [](const TraceSpan* a, const TraceSpan* b) {
                if (a->start_ns != b->start_ns) return a->start_ns < b->start_ns;
                return a->end_ns > b->end_ns;
              });
    std::vector<Interval>& rows = out[tid];
    long long cur_end = LLONG_MIN;
    for (const TraceSpan* s : list) {
      if (s->start_ns >= cur_end) {
        rows.push_back(Interval{s->name, s->start_ns, s->end_ns});
        cur_end = s->end_ns;
      }
    }
  }
  return out;
}

bool is_wait_name(const std::string& name) {
  static const std::string suffix = ".wait";
  return name.size() > suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Sorted disjoint union of the *.wait span intervals per rank row.
std::map<long long, WaitUnion> wait_union_by_tid(
    const std::vector<TraceSpan>& spans) {
  std::map<long long, WaitUnion> raw;
  for (const TraceSpan& s : spans) {
    if (is_wait_name(s.name) && s.end_ns > s.start_ns) {
      raw[s.tid].push_back({s.start_ns, s.end_ns});
    }
  }
  for (auto& [tid, list] : raw) {
    std::sort(list.begin(), list.end());
    WaitUnion merged;
    for (const auto& [a, b] : list) {
      if (!merged.empty() && a <= merged.back().second) {
        merged.back().second = std::max(merged.back().second, b);
      } else {
        merged.push_back({a, b});
      }
    }
    list = std::move(merged);
  }
  return raw;
}

long long overlap_ns(const WaitUnion& wait, long long a, long long b) {
  long long total = 0;
  for (const auto& [s, e] : wait) {
    const long long lo = std::max(a, s);
    const long long hi = std::min(b, e);
    if (hi > lo) total += hi - lo;
    if (s >= b) break;
  }
  return total;
}

constexpr const char* kUntracked = "(untracked)";

// Accumulates (work, wait) seconds per phase name in first-seen order.
struct PhaseBuckets {
  std::map<std::string, std::pair<double, double>> totals;
  std::vector<std::string> order;

  void add(const std::string& name, long long work_ns, long long wait_ns) {
    auto [it, inserted] = totals.try_emplace(name);
    if (inserted) order.push_back(name);
    it->second.first += static_cast<double>(work_ns) * 1e-9;
    it->second.second += static_cast<double>(wait_ns) * 1e-9;
  }
};

// Splits one critical-path segment at its row's outermost boundaries and
// banks each piece: wait segments (and *.wait overlap inside work
// segments) count as wait, uncovered path time as "(untracked)".
void attribute_segment(const CriticalSegment& seg,
                       const std::map<long long, std::vector<Interval>>& outer,
                       const std::map<long long, WaitUnion>& waits,
                       PhaseBuckets& buckets) {
  static const WaitUnion empty_union;
  static const std::vector<Interval> empty_rows;
  const auto oit = outer.find(seg.tid);
  const std::vector<Interval>& rows =
      oit == outer.end() ? empty_rows : oit->second;
  const auto wit = waits.find(seg.tid);
  const WaitUnion& wait = wit == waits.end() ? empty_union : wit->second;
  const bool is_wait_seg = seg.kind == CriticalSegment::Kind::kWait;
  long long cursor = seg.start_ns;
  for (const Interval& iv : rows) {
    if (iv.end_ns <= cursor) continue;
    if (iv.start_ns >= seg.end_ns) break;
    const long long a = std::max(cursor, iv.start_ns);
    if (a > cursor) {  // gap before this interval: no span was open
      const long long gap = std::min(a, seg.end_ns) - cursor;
      buckets.add(kUntracked, is_wait_seg ? 0 : gap, is_wait_seg ? gap : 0);
    }
    const long long b = std::min(seg.end_ns, iv.end_ns);
    if (b > a) {
      const long long wait_in = is_wait_seg ? b - a : overlap_ns(wait, a, b);
      buckets.add(iv.name, (b - a) - wait_in, wait_in);
    }
    cursor = std::max(cursor, b);
    if (cursor >= seg.end_ns) break;
  }
  if (cursor < seg.end_ns) {
    const long long gap = seg.end_ns - cursor;
    buckets.add(kUntracked, is_wait_seg ? 0 : gap, is_wait_seg ? gap : 0);
  }
}

double get_number(const json::Value& obj, const char* key, double fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

long long ns_from_us(double us) {
  return static_cast<long long>(std::llround(us * 1000.0));
}

}  // namespace

Trace snapshot_trace() {
  Trace t;
  for (const detail::SpanSnapshot& s : detail::snapshot_spans()) {
    TraceSpan span;
    span.name = s.name;
    span.tid = s.rank < 0 ? kNonRankTid : s.rank;
    span.start_ns = s.start_ns;
    span.end_ns = s.end_ns;
    t.spans.push_back(std::move(span));
  }
  // Only completed pairs ('f' carries both endpoints' stamps) become
  // causal edges; an unmatched 's' cannot constrain anything.
  for (const detail::FlowRecord& f : detail::snapshot_flows()) {
    if (f.phase != 'f') continue;
    TraceFlow flow;
    flow.src_tid = f.src;
    flow.dst_tid = f.dst;
    flow.send_ns = f.send_ns;
    flow.recv_start_ns = f.recv_start_ns >= 0 ? f.recv_start_ns : f.ts_ns;
    flow.recv_end_ns = f.ts_ns;
    t.flows.push_back(flow);
  }
  return t;
}

Trace trace_from_chrome_json(const json::Value& doc, long long pid) {
  Trace t;
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) return t;
  if (pid < 0) {
    // Merged multi-process traces: analyze the pid with the most span
    // time (the driver process; tiny helper processes lose the vote).
    std::map<long long, double> span_us_by_pid;
    for (const json::Value& e : events->array) {
      const json::Value* ph = e.find("ph");
      if (ph == nullptr || !ph->is_string() || ph->string != "X") continue;
      span_us_by_pid[static_cast<long long>(get_number(e, "pid", 0.0))] +=
          get_number(e, "dur", 0.0);
    }
    double best = -1.0;
    for (const auto& [p, us] : span_us_by_pid) {
      if (us > best) {
        best = us;
        pid = p;
      }
    }
  }
  for (const json::Value& e : events->array) {
    const json::Value* ph = e.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    const long long event_pid =
        static_cast<long long>(get_number(e, "pid", 0.0));
    if (event_pid != pid) continue;
    if (ph->string == "X") {
      const json::Value* name = e.find("name");
      TraceSpan span;
      span.name = name != nullptr && name->is_string() ? name->string : "";
      span.pid = event_pid;
      span.tid = static_cast<long long>(get_number(e, "tid", 0.0));
      span.start_ns = ns_from_us(get_number(e, "ts", 0.0));
      span.end_ns = span.start_ns + ns_from_us(get_number(e, "dur", 0.0));
      t.spans.push_back(std::move(span));
    } else if (ph->string == "f") {
      // The 'f' event is self-contained: args carry the matched send and
      // wait-start stamps, and the id ("pid:run:ctx:src:dst:tag:seq")
      // yields the sender's rank as its fourth field.
      const json::Value* id = e.find("id");
      const json::Value* args = e.find("args");
      if (id == nullptr || !id->is_string() || args == nullptr) continue;
      long long id_pid = 0, run = 0, ctx = 0, src = 0;
      if (std::sscanf(id->string.c_str(), "%lld:%lld:%lld:%lld", &id_pid, &run,
                      &ctx, &src) != 4) {
        continue;
      }
      TraceFlow flow;
      flow.pid = event_pid;
      flow.src_tid = src;
      flow.dst_tid = static_cast<long long>(get_number(e, "tid", 0.0));
      flow.recv_end_ns = ns_from_us(get_number(e, "ts", 0.0));
      flow.send_ns = ns_from_us(get_number(*args, "send_ts", 0.0));
      flow.recv_start_ns = ns_from_us(
          get_number(*args, "wait_start_ts",
                     static_cast<double>(flow.recv_end_ns) * 1e-3));
      t.flows.push_back(flow);
    }
  }
  return t;
}

CriticalPathReport critical_path(const Trace& trace) {
  CriticalPathReport out;
  if (trace.spans.empty()) return out;
  long long min_start = LLONG_MAX;
  long long max_end = LLONG_MIN;
  long long end_tid = 0;
  for (const TraceSpan& s : trace.spans) {
    min_start = std::min(min_start, s.start_ns);
    if (s.end_ns > max_end) {
      max_end = s.end_ns;
      end_tid = s.tid;
    }
  }
  // Backward walk: from the last span end, repeatedly jump along the
  // latest message edge whose receiver was already blocked when the
  // sender sent (recv_start < send) — those are the edges that gate
  // progress. Everything between two jumps is work on the current row.
  long long cur_t = max_end;
  long long cur_tid = end_tid;
  std::size_t guard = trace.spans.size() + trace.flows.size() + 2;
  while (guard-- > 0) {
    const TraceFlow* best = nullptr;
    for (const TraceFlow& f : trace.flows) {
      if (f.dst_tid != cur_tid || f.recv_end_ns > cur_t) continue;
      if (f.recv_start_ns >= f.send_ns) continue;  // message was not awaited
      if (f.send_ns >= f.recv_end_ns) continue;    // degenerate stamp
      if (best == nullptr || f.recv_end_ns > best->recv_end_ns) best = &f;
    }
    if (best == nullptr) break;
    if (cur_t > best->recv_end_ns) {
      out.segments.push_back(CriticalSegment{
          cur_tid, CriticalSegment::Kind::kWork, best->recv_end_ns, cur_t});
    }
    out.segments.push_back(CriticalSegment{cur_tid,
                                           CriticalSegment::Kind::kWait,
                                           best->send_ns, best->recv_end_ns});
    cur_tid = best->src_tid;
    cur_t = best->send_ns;
    ++out.hops;
  }
  const long long path_floor = std::min(min_start, cur_t);
  if (cur_t > path_floor) {
    out.segments.push_back(CriticalSegment{
        cur_tid, CriticalSegment::Kind::kWork, path_floor, cur_t});
  }
  out.total_seconds = static_cast<double>(max_end - min_start) * 1e-9;
  long long attributed_ns = 0;
  for (const CriticalSegment& seg : out.segments) {
    attributed_ns += seg.end_ns - seg.start_ns;
  }
  out.attributed_seconds = static_cast<double>(attributed_ns) * 1e-9;

  const auto outer = outermost_by_tid(trace.spans);
  const auto waits = wait_union_by_tid(trace.spans);
  PhaseBuckets buckets;
  for (const CriticalSegment& seg : out.segments) {
    attribute_segment(seg, outer, waits, buckets);
  }
  for (const std::string& name : buckets.order) {
    const auto& [work, wait] = buckets.totals.at(name);
    CriticalPhase phase;
    phase.name = name;
    phase.work_seconds = work;
    phase.wait_seconds = wait;
    phase.share_pct = out.total_seconds > 0.0
                          ? (work + wait) / out.total_seconds * 100.0
                          : 0.0;
    out.phases.push_back(std::move(phase));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const CriticalPhase& a, const CriticalPhase& b) {
              return a.share_pct > b.share_pct;
            });
  return out;
}

CriticalPathReport critical_path() { return critical_path(snapshot_trace()); }

std::vector<PhaseWorkWait> work_wait_by_phase(const Trace& trace) {
  const auto outer = outermost_by_tid(trace.spans);
  const auto waits = wait_union_by_tid(trace.spans);
  struct Accum {
    long long count = 0;
    double work = 0.0;
    double wait = 0.0;
    std::map<long long, double> per_tid_seconds;
  };
  std::map<std::string, Accum> totals;
  std::vector<std::string> order;
  static const WaitUnion empty_union;
  for (const auto& [tid, rows] : outer) {
    const auto wit = waits.find(tid);
    const WaitUnion& wait = wit == waits.end() ? empty_union : wit->second;
    for (const Interval& iv : rows) {
      const long long dur = iv.end_ns - iv.start_ns;
      const long long wait_in = overlap_ns(wait, iv.start_ns, iv.end_ns);
      auto [it, inserted] = totals.try_emplace(iv.name);
      if (inserted) order.push_back(iv.name);
      Accum& acc = it->second;
      acc.count += 1;
      acc.work += static_cast<double>(dur - wait_in) * 1e-9;
      acc.wait += static_cast<double>(wait_in) * 1e-9;
      acc.per_tid_seconds[tid] += static_cast<double>(dur) * 1e-9;
    }
  }
  std::vector<PhaseWorkWait> out;
  out.reserve(order.size());
  for (const std::string& name : order) {
    const Accum& acc = totals.at(name);
    PhaseWorkWait w;
    w.name = name;
    w.count = acc.count;
    w.ranks = static_cast<int>(acc.per_tid_seconds.size());
    w.work_seconds = acc.work;
    w.wait_seconds = acc.wait;
    double total = 0.0;
    for (const auto& [tid, secs] : acc.per_tid_seconds) {
      w.max_rank_seconds = std::max(w.max_rank_seconds, secs);
      total += secs;
    }
    w.mean_rank_seconds = w.ranks > 0 ? total / w.ranks : 0.0;
    w.imbalance = w.mean_rank_seconds > 0.0
                      ? w.max_rank_seconds / w.mean_rank_seconds
                      : 1.0;
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace lrt::obs
