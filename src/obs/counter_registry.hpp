// GENERATED FILE — DO NOT EDIT.
//
// Registered counter name vocabulary, generated from
// src/obs/counters.def by `lrt-analyze gen-counters --write`. The
// counter-registry-sync pass fails CI when this file and the def
// drift apart; the counter-registry pass requires every
// obs::counter("...") literal in src/ and bench/ to name an
// entry. Dynamically built names (e.g. the comm.<kind> family)
// must still enumerate every reachable name here.
#pragma once

#include <cstddef>
#include <string_view>

namespace lrt::obs::cnt {

inline constexpr const char* kKmeansAssignFull = "kmeans.assign.full";  // points fully re-scanned in an assign sweep
inline constexpr const char* kKmeansAssignSkipped = "kmeans.assign.skipped";  // points skipped by the triangle-inequality prune
inline constexpr const char* kKmeansDistIterations = "kmeans.dist.iterations";  // distributed Lloyd iterations executed
inline constexpr const char* kLaLobpcgIterations = "la.lobpcg.iterations";  // LOBPCG outer iterations executed
inline constexpr const char* kLaGemmCalls = "la.gemm.calls";  // gemm entry calls
inline constexpr const char* kLaGemmFlops = "la.gemm.flops";  // floating-point operations billed to gemm
inline constexpr const char* kLaGemmPackedCalls = "la.gemm.packed_calls";  // gemm calls served by the packed kernel
inline constexpr const char* kLaGemmFallbackCalls = "la.gemm.fallback_calls";  // gemm calls served by the naive fallback
inline constexpr const char* kLaGemmBatchedCalls = "la.gemm.batched_calls";  // gemm_many batch invocations (B packed once)
inline constexpr const char* kLaGemmBatchedItems = "la.gemm.batched_items";  // small-A panels streamed through gemm_many
inline constexpr const char* kFftFft3dCalls = "fft.fft3d.calls";  // 3-D transforms executed
inline constexpr const char* kFftFft3dPoints = "fft.fft3d.points";  // grid points transformed
inline constexpr const char* kFftFft1dBatches = "fft.fft1d.batches";  // batched 1-D plan executions
inline constexpr const char* kFftFft1dLines = "fft.fft1d.lines";  // 1-D lines transformed
inline constexpr const char* kParDistLobpcgIterations = "par.dist_lobpcg.iterations";  // distributed LOBPCG outer iterations
inline constexpr const char* kFtInjectQueries = "ft.inject.queries";  // fault-plan draw sites reached (sends + collectives)
inline constexpr const char* kFtInjectSendFail = "ft.inject.send_fail";  // transient send failures injected
inline constexpr const char* kFtInjectDelay = "ft.inject.delay";  // delays injected
inline constexpr const char* kFtInjectCrash = "ft.inject.crash";  // rank crashes injected
inline constexpr const char* kFtRetryAttempts = "ft.retry.attempts";  // retried attempts after a transient error (generic sites)
inline constexpr const char* kFtRetryExhausted = "ft.retry.exhausted";  // retry budgets exhausted (generic sites)
inline constexpr const char* kCommRetryAttempts = "comm.retry.attempts";  // Comm sends retried after an injected transient failure
inline constexpr const char* kCommRetryExhausted = "comm.retry.exhausted";  // Comm sends that exhausted their retry budget
inline constexpr const char* kCommP2pBytes = "comm.p2p.bytes";  // point-to-point payload bytes
inline constexpr const char* kCommP2pCalls = "comm.p2p.calls";  // point-to-point sends/receives
inline constexpr const char* kCommBcastBytes = "comm.bcast.bytes";  // broadcast payload bytes
inline constexpr const char* kCommBcastCalls = "comm.bcast.calls";  // broadcast invocations
inline constexpr const char* kCommReduceBytes = "comm.reduce.bytes";  // reduction payload bytes
inline constexpr const char* kCommReduceCalls = "comm.reduce.calls";  // reduction invocations
inline constexpr const char* kCommAllreduceBytes = "comm.allreduce.bytes";  // single-round allreduce payload bytes
inline constexpr const char* kCommAllreduceCalls = "comm.allreduce.calls";  // single-round allreduce invocations
inline constexpr const char* kCommAlltoallvBytes = "comm.alltoallv.bytes";  // all-to-all-v payload bytes
inline constexpr const char* kCommAlltoallvCalls = "comm.alltoallv.calls";  // all-to-all-v invocations
inline constexpr const char* kCommAllgathervBytes = "comm.allgatherv.bytes";  // allgather-v payload bytes
inline constexpr const char* kCommAllgathervCalls = "comm.allgatherv.calls";  // allgather-v invocations
inline constexpr const char* kCommGatherBytes = "comm.gather.bytes";  // gather payload bytes
inline constexpr const char* kCommGatherCalls = "comm.gather.calls";  // gather invocations
inline constexpr const char* kCommScatterBytes = "comm.scatter.bytes";  // scatter payload bytes
inline constexpr const char* kCommScatterCalls = "comm.scatter.calls";  // scatter invocations
inline constexpr const char* kCommBarrierBytes = "comm.barrier.bytes";  // barrier payload bytes (always zero)
inline constexpr const char* kCommBarrierCalls = "comm.barrier.calls";  // barrier invocations
inline constexpr const char* kMemHwmBytes = "mem.hwm.bytes";  // peak resident set size observed at phase boundaries

inline constexpr const char* kAll[] = {
    kKmeansAssignFull,
    kKmeansAssignSkipped,
    kKmeansDistIterations,
    kLaLobpcgIterations,
    kLaGemmCalls,
    kLaGemmFlops,
    kLaGemmPackedCalls,
    kLaGemmFallbackCalls,
    kLaGemmBatchedCalls,
    kLaGemmBatchedItems,
    kFftFft3dCalls,
    kFftFft3dPoints,
    kFftFft1dBatches,
    kFftFft1dLines,
    kParDistLobpcgIterations,
    kFtInjectQueries,
    kFtInjectSendFail,
    kFtInjectDelay,
    kFtInjectCrash,
    kFtRetryAttempts,
    kFtRetryExhausted,
    kCommRetryAttempts,
    kCommRetryExhausted,
    kCommP2pBytes,
    kCommP2pCalls,
    kCommBcastBytes,
    kCommBcastCalls,
    kCommReduceBytes,
    kCommReduceCalls,
    kCommAllreduceBytes,
    kCommAllreduceCalls,
    kCommAlltoallvBytes,
    kCommAlltoallvCalls,
    kCommAllgathervBytes,
    kCommAllgathervCalls,
    kCommGatherBytes,
    kCommGatherCalls,
    kCommScatterBytes,
    kCommScatterCalls,
    kCommBarrierBytes,
    kCommBarrierCalls,
    kMemHwmBytes,
};

inline constexpr std::size_t kCount = sizeof(kAll) / sizeof(kAll[0]);

/// True when `name` is a registered counter name.
constexpr bool is_registered(std::string_view name) {
  for (const char* counter : kAll) {
    if (name == counter) return true;
  }
  return false;
}

}  // namespace lrt::obs::cnt
