#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace lrt::obs::json {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    LRT_CHECK(pos_ == text_.size(),
              "json: trailing characters at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    LRT_CHECK(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    LRT_CHECK(take() == c, "json: expected '" << c << "' at offset "
                                              << (pos_ - 1));
  }

  void expect_word(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) expect(*p);
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = string_literal();
        return v;
      }
      case 't': {
        expect_word("true");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n':
        expect_word("null");
        return Value{};
      default:
        return number_literal();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string_literal();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      LRT_CHECK(c == ',', "json: expected ',' or '}' in object at offset "
                              << (pos_ - 1));
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      LRT_CHECK(c == ',', "json: expected ',' or ']' in array at offset "
                              << (pos_ - 1));
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out.push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  unsigned hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value += static_cast<unsigned>(c - 'A' + 10);
      } else {
        LRT_CHECK(false, "json: bad \\u escape at offset " << (pos_ - 1));
      }
    }
    return value;
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            expect('\\');
            expect('u');
            const unsigned low = hex4();
            LRT_CHECK(low >= 0xDC00 && low <= 0xDFFF,
                      "json: unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          }
          append_utf8(out, cp);
          break;
        }
        default:
          LRT_CHECK(false, "json: bad escape '\\" << e << "'");
      }
    }
  }

  Value number_literal() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    LRT_CHECK(digits, "json: malformed number at offset " << start);
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(text_.c_str() + start, nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_to(const Value& value, std::string& out) {
  switch (value.kind) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      out += number(value.number);
      break;
    case Value::Kind::kString:
      out += quote(value.string);
      break;
    case Value::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Value& child : value.array) {
        if (!first) out.push_back(',');
        first = false;
        dump_to(child, out);
      }
      out.push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, child] : value.object) {
        if (!first) out.push_back(',');
        first = false;
        out += quote(key);
        out.push_back(':');
        dump_to(child, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value parse(const std::string& text) { return Parser(text).document(); }

std::string dump(const Value& value) {
  std::string out;
  dump_to(value, out);
  return out;
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values (counter snapshots, counts) print exactly; the rest
  // round-trip at max_digits10.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace lrt::obs::json
