file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_points.dir/bench_fig2_points.cpp.o"
  "CMakeFiles/bench_fig2_points.dir/bench_fig2_points.cpp.o.d"
  "bench_fig2_points"
  "bench_fig2_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
