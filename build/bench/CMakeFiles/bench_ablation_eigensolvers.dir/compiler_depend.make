# Empty compiler generated dependencies file for bench_ablation_eigensolvers.
# This may be replaced when dependencies are built.
