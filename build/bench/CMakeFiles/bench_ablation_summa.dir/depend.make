# Empty dependencies file for bench_ablation_summa.
# This may be replaced when dependencies are built.
