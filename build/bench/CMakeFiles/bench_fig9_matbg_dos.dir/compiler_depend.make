# Empty compiler generated dependencies file for bench_fig9_matbg_dos.
# This may be replaced when dependencies are built.
