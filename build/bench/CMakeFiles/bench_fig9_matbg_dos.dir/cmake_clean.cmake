file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_matbg_dos.dir/bench_fig9_matbg_dos.cpp.o"
  "CMakeFiles/bench_fig9_matbg_dos.dir/bench_fig9_matbg_dos.cpp.o.d"
  "bench_fig9_matbg_dos"
  "bench_fig9_matbg_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_matbg_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
