file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_point_selection.dir/bench_table3_point_selection.cpp.o"
  "CMakeFiles/bench_table3_point_selection.dir/bench_table3_point_selection.cpp.o.d"
  "bench_table3_point_selection"
  "bench_table3_point_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_point_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
