
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/lrtddft.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/lrtddft.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/common/log.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/lrtddft.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/common/table.cpp.o.d"
  "/root/repo/src/common/timer.cpp" "src/CMakeFiles/lrtddft.dir/common/timer.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/common/timer.cpp.o.d"
  "/root/repo/src/dft/ewald.cpp" "src/CMakeFiles/lrtddft.dir/dft/ewald.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/ewald.cpp.o.d"
  "/root/repo/src/dft/hamiltonian.cpp" "src/CMakeFiles/lrtddft.dir/dft/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/hamiltonian.cpp.o.d"
  "/root/repo/src/dft/hartree.cpp" "src/CMakeFiles/lrtddft.dir/dft/hartree.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/hartree.cpp.o.d"
  "/root/repo/src/dft/lobpcg_gs.cpp" "src/CMakeFiles/lrtddft.dir/dft/lobpcg_gs.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/lobpcg_gs.cpp.o.d"
  "/root/repo/src/dft/pseudopotential.cpp" "src/CMakeFiles/lrtddft.dir/dft/pseudopotential.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/pseudopotential.cpp.o.d"
  "/root/repo/src/dft/scf.cpp" "src/CMakeFiles/lrtddft.dir/dft/scf.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/scf.cpp.o.d"
  "/root/repo/src/dft/synthetic.cpp" "src/CMakeFiles/lrtddft.dir/dft/synthetic.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/synthetic.cpp.o.d"
  "/root/repo/src/dft/xc.cpp" "src/CMakeFiles/lrtddft.dir/dft/xc.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/dft/xc.cpp.o.d"
  "/root/repo/src/fft/fft1d.cpp" "src/CMakeFiles/lrtddft.dir/fft/fft1d.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/fft/fft1d.cpp.o.d"
  "/root/repo/src/fft/fft3d.cpp" "src/CMakeFiles/lrtddft.dir/fft/fft3d.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/fft/fft3d.cpp.o.d"
  "/root/repo/src/fft/poisson.cpp" "src/CMakeFiles/lrtddft.dir/fft/poisson.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/fft/poisson.cpp.o.d"
  "/root/repo/src/grid/crystal.cpp" "src/CMakeFiles/lrtddft.dir/grid/crystal.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/grid/crystal.cpp.o.d"
  "/root/repo/src/grid/gvectors.cpp" "src/CMakeFiles/lrtddft.dir/grid/gvectors.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/grid/gvectors.cpp.o.d"
  "/root/repo/src/grid/rsgrid.cpp" "src/CMakeFiles/lrtddft.dir/grid/rsgrid.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/grid/rsgrid.cpp.o.d"
  "/root/repo/src/grid/unitcell.cpp" "src/CMakeFiles/lrtddft.dir/grid/unitcell.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/grid/unitcell.cpp.o.d"
  "/root/repo/src/io/cube.cpp" "src/CMakeFiles/lrtddft.dir/io/cube.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/io/cube.cpp.o.d"
  "/root/repo/src/io/xyz.cpp" "src/CMakeFiles/lrtddft.dir/io/xyz.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/io/xyz.cpp.o.d"
  "/root/repo/src/isdf/interpolation.cpp" "src/CMakeFiles/lrtddft.dir/isdf/interpolation.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/isdf/interpolation.cpp.o.d"
  "/root/repo/src/isdf/isdf.cpp" "src/CMakeFiles/lrtddft.dir/isdf/isdf.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/isdf/isdf.cpp.o.d"
  "/root/repo/src/isdf/kmeans_points.cpp" "src/CMakeFiles/lrtddft.dir/isdf/kmeans_points.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/isdf/kmeans_points.cpp.o.d"
  "/root/repo/src/isdf/pairproduct.cpp" "src/CMakeFiles/lrtddft.dir/isdf/pairproduct.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/isdf/pairproduct.cpp.o.d"
  "/root/repo/src/isdf/qrcp_points.cpp" "src/CMakeFiles/lrtddft.dir/isdf/qrcp_points.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/isdf/qrcp_points.cpp.o.d"
  "/root/repo/src/kmeans/dist_kmeans.cpp" "src/CMakeFiles/lrtddft.dir/kmeans/dist_kmeans.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/kmeans/dist_kmeans.cpp.o.d"
  "/root/repo/src/kmeans/kmeans.cpp" "src/CMakeFiles/lrtddft.dir/kmeans/kmeans.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/kmeans/kmeans.cpp.o.d"
  "/root/repo/src/la/blas.cpp" "src/CMakeFiles/lrtddft.dir/la/blas.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/blas.cpp.o.d"
  "/root/repo/src/la/cholesky.cpp" "src/CMakeFiles/lrtddft.dir/la/cholesky.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/cholesky.cpp.o.d"
  "/root/repo/src/la/davidson.cpp" "src/CMakeFiles/lrtddft.dir/la/davidson.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/davidson.cpp.o.d"
  "/root/repo/src/la/eig.cpp" "src/CMakeFiles/lrtddft.dir/la/eig.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/eig.cpp.o.d"
  "/root/repo/src/la/lobpcg.cpp" "src/CMakeFiles/lrtddft.dir/la/lobpcg.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/lobpcg.cpp.o.d"
  "/root/repo/src/la/lstsq.cpp" "src/CMakeFiles/lrtddft.dir/la/lstsq.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/lstsq.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/CMakeFiles/lrtddft.dir/la/lu.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/lu.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/CMakeFiles/lrtddft.dir/la/matrix.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/matrix.cpp.o.d"
  "/root/repo/src/la/ortho.cpp" "src/CMakeFiles/lrtddft.dir/la/ortho.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/ortho.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/CMakeFiles/lrtddft.dir/la/qr.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/qr.cpp.o.d"
  "/root/repo/src/la/qrcp.cpp" "src/CMakeFiles/lrtddft.dir/la/qrcp.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/la/qrcp.cpp.o.d"
  "/root/repo/src/par/collectives.cpp" "src/CMakeFiles/lrtddft.dir/par/collectives.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/collectives.cpp.o.d"
  "/root/repo/src/par/comm.cpp" "src/CMakeFiles/lrtddft.dir/par/comm.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/comm.cpp.o.d"
  "/root/repo/src/par/dist_lobpcg.cpp" "src/CMakeFiles/lrtddft.dir/par/dist_lobpcg.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/dist_lobpcg.cpp.o.d"
  "/root/repo/src/par/distblas.cpp" "src/CMakeFiles/lrtddft.dir/par/distblas.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/distblas.cpp.o.d"
  "/root/repo/src/par/disteig.cpp" "src/CMakeFiles/lrtddft.dir/par/disteig.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/disteig.cpp.o.d"
  "/root/repo/src/par/distmatrix.cpp" "src/CMakeFiles/lrtddft.dir/par/distmatrix.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/distmatrix.cpp.o.d"
  "/root/repo/src/par/jacobi_eig.cpp" "src/CMakeFiles/lrtddft.dir/par/jacobi_eig.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/jacobi_eig.cpp.o.d"
  "/root/repo/src/par/layout.cpp" "src/CMakeFiles/lrtddft.dir/par/layout.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/layout.cpp.o.d"
  "/root/repo/src/par/pipeline.cpp" "src/CMakeFiles/lrtddft.dir/par/pipeline.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/pipeline.cpp.o.d"
  "/root/repo/src/par/redistribute.cpp" "src/CMakeFiles/lrtddft.dir/par/redistribute.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/redistribute.cpp.o.d"
  "/root/repo/src/par/runtime.cpp" "src/CMakeFiles/lrtddft.dir/par/runtime.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/runtime.cpp.o.d"
  "/root/repo/src/par/summa.cpp" "src/CMakeFiles/lrtddft.dir/par/summa.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/summa.cpp.o.d"
  "/root/repo/src/par/transpose.cpp" "src/CMakeFiles/lrtddft.dir/par/transpose.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/par/transpose.cpp.o.d"
  "/root/repo/src/tddft/casida_isdf.cpp" "src/CMakeFiles/lrtddft.dir/tddft/casida_isdf.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/casida_isdf.cpp.o.d"
  "/root/repo/src/tddft/casida_naive.cpp" "src/CMakeFiles/lrtddft.dir/tddft/casida_naive.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/casida_naive.cpp.o.d"
  "/root/repo/src/tddft/dist_driver.cpp" "src/CMakeFiles/lrtddft.dir/tddft/dist_driver.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/dist_driver.cpp.o.d"
  "/root/repo/src/tddft/dist_implicit.cpp" "src/CMakeFiles/lrtddft.dir/tddft/dist_implicit.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/dist_implicit.cpp.o.d"
  "/root/repo/src/tddft/driver.cpp" "src/CMakeFiles/lrtddft.dir/tddft/driver.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/driver.cpp.o.d"
  "/root/repo/src/tddft/full_casida.cpp" "src/CMakeFiles/lrtddft.dir/tddft/full_casida.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/full_casida.cpp.o.d"
  "/root/repo/src/tddft/implicit_hamiltonian.cpp" "src/CMakeFiles/lrtddft.dir/tddft/implicit_hamiltonian.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/implicit_hamiltonian.cpp.o.d"
  "/root/repo/src/tddft/kernel.cpp" "src/CMakeFiles/lrtddft.dir/tddft/kernel.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/kernel.cpp.o.d"
  "/root/repo/src/tddft/lobpcg_tddft.cpp" "src/CMakeFiles/lrtddft.dir/tddft/lobpcg_tddft.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/lobpcg_tddft.cpp.o.d"
  "/root/repo/src/tddft/rt_propagation.cpp" "src/CMakeFiles/lrtddft.dir/tddft/rt_propagation.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/rt_propagation.cpp.o.d"
  "/root/repo/src/tddft/spectrum.cpp" "src/CMakeFiles/lrtddft.dir/tddft/spectrum.cpp.o" "gcc" "src/CMakeFiles/lrtddft.dir/tddft/spectrum.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
