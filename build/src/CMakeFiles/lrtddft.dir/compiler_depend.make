# Empty compiler generated dependencies file for lrtddft.
# This may be replaced when dependencies are built.
