file(REMOVE_RECURSE
  "liblrtddft.a"
)
