file(REMOVE_RECURSE
  "CMakeFiles/matbg_dos.dir/matbg_dos.cpp.o"
  "CMakeFiles/matbg_dos.dir/matbg_dos.cpp.o.d"
  "matbg_dos"
  "matbg_dos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matbg_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
