# Empty compiler generated dependencies file for matbg_dos.
# This may be replaced when dependencies are built.
