# Empty compiler generated dependencies file for silicon_excited_states.
# This may be replaced when dependencies are built.
