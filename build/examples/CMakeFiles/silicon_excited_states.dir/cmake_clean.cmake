file(REMOVE_RECURSE
  "CMakeFiles/silicon_excited_states.dir/silicon_excited_states.cpp.o"
  "CMakeFiles/silicon_excited_states.dir/silicon_excited_states.cpp.o.d"
  "silicon_excited_states"
  "silicon_excited_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silicon_excited_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
