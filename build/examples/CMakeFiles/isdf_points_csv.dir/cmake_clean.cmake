file(REMOVE_RECURSE
  "CMakeFiles/isdf_points_csv.dir/isdf_points_csv.cpp.o"
  "CMakeFiles/isdf_points_csv.dir/isdf_points_csv.cpp.o.d"
  "isdf_points_csv"
  "isdf_points_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isdf_points_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
