# Empty compiler generated dependencies file for isdf_points_csv.
# This may be replaced when dependencies are built.
