# Empty dependencies file for rt_absorption.
# This may be replaced when dependencies are built.
