file(REMOVE_RECURSE
  "CMakeFiles/rt_absorption.dir/rt_absorption.cpp.o"
  "CMakeFiles/rt_absorption.dir/rt_absorption.cpp.o.d"
  "rt_absorption"
  "rt_absorption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_absorption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
