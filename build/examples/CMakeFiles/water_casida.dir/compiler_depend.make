# Empty compiler generated dependencies file for water_casida.
# This may be replaced when dependencies are built.
