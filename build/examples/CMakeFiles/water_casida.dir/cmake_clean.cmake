file(REMOVE_RECURSE
  "CMakeFiles/water_casida.dir/water_casida.cpp.o"
  "CMakeFiles/water_casida.dir/water_casida.cpp.o.d"
  "water_casida"
  "water_casida.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_casida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
