file(REMOVE_RECURSE
  "CMakeFiles/test_par_summa.dir/test_par_summa.cpp.o"
  "CMakeFiles/test_par_summa.dir/test_par_summa.cpp.o.d"
  "test_par_summa"
  "test_par_summa.pdb"
  "test_par_summa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_summa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
