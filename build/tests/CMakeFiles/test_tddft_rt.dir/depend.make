# Empty dependencies file for test_tddft_rt.
# This may be replaced when dependencies are built.
