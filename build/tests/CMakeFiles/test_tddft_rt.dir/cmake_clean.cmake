file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_rt.dir/test_tddft_rt.cpp.o"
  "CMakeFiles/test_tddft_rt.dir/test_tddft_rt.cpp.o.d"
  "test_tddft_rt"
  "test_tddft_rt.pdb"
  "test_tddft_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
