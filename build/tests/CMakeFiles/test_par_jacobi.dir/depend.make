# Empty dependencies file for test_par_jacobi.
# This may be replaced when dependencies are built.
