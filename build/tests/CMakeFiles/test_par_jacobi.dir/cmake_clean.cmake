file(REMOVE_RECURSE
  "CMakeFiles/test_par_jacobi.dir/test_par_jacobi.cpp.o"
  "CMakeFiles/test_par_jacobi.dir/test_par_jacobi.cpp.o.d"
  "test_par_jacobi"
  "test_par_jacobi.pdb"
  "test_par_jacobi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
