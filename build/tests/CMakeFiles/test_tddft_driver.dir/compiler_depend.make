# Empty compiler generated dependencies file for test_tddft_driver.
# This may be replaced when dependencies are built.
