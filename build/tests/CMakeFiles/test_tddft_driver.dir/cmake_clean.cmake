file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_driver.dir/test_tddft_driver.cpp.o"
  "CMakeFiles/test_tddft_driver.dir/test_tddft_driver.cpp.o.d"
  "test_tddft_driver"
  "test_tddft_driver.pdb"
  "test_tddft_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
