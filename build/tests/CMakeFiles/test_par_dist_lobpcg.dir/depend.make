# Empty dependencies file for test_par_dist_lobpcg.
# This may be replaced when dependencies are built.
