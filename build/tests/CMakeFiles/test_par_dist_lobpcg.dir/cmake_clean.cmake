file(REMOVE_RECURSE
  "CMakeFiles/test_par_dist_lobpcg.dir/test_par_dist_lobpcg.cpp.o"
  "CMakeFiles/test_par_dist_lobpcg.dir/test_par_dist_lobpcg.cpp.o.d"
  "test_par_dist_lobpcg"
  "test_par_dist_lobpcg.pdb"
  "test_par_dist_lobpcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_dist_lobpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
