file(REMOVE_RECURSE
  "CMakeFiles/test_la_ortho.dir/test_la_ortho.cpp.o"
  "CMakeFiles/test_la_ortho.dir/test_la_ortho.cpp.o.d"
  "test_la_ortho"
  "test_la_ortho.pdb"
  "test_la_ortho[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_ortho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
