# Empty dependencies file for test_la_ortho.
# This may be replaced when dependencies are built.
