# Empty compiler generated dependencies file for test_tddft_kernel.
# This may be replaced when dependencies are built.
