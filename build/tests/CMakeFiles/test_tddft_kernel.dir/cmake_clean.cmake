file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_kernel.dir/test_tddft_kernel.cpp.o"
  "CMakeFiles/test_tddft_kernel.dir/test_tddft_kernel.cpp.o.d"
  "test_tddft_kernel"
  "test_tddft_kernel.pdb"
  "test_tddft_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
