# Empty dependencies file for test_dft_potentials.
# This may be replaced when dependencies are built.
