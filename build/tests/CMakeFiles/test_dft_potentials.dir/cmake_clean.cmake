file(REMOVE_RECURSE
  "CMakeFiles/test_dft_potentials.dir/test_dft_potentials.cpp.o"
  "CMakeFiles/test_dft_potentials.dir/test_dft_potentials.cpp.o.d"
  "test_dft_potentials"
  "test_dft_potentials.pdb"
  "test_dft_potentials[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dft_potentials.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
