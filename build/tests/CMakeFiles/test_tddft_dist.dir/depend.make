# Empty dependencies file for test_tddft_dist.
# This may be replaced when dependencies are built.
