file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_dist.dir/test_tddft_dist.cpp.o"
  "CMakeFiles/test_tddft_dist.dir/test_tddft_dist.cpp.o.d"
  "test_tddft_dist"
  "test_tddft_dist.pdb"
  "test_tddft_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
