file(REMOVE_RECURSE
  "CMakeFiles/test_par_dist.dir/test_par_dist.cpp.o"
  "CMakeFiles/test_par_dist.dir/test_par_dist.cpp.o.d"
  "test_par_dist"
  "test_par_dist.pdb"
  "test_par_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
