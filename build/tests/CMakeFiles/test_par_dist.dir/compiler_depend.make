# Empty compiler generated dependencies file for test_par_dist.
# This may be replaced when dependencies are built.
