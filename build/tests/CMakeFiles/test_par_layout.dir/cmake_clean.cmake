file(REMOVE_RECURSE
  "CMakeFiles/test_par_layout.dir/test_par_layout.cpp.o"
  "CMakeFiles/test_par_layout.dir/test_par_layout.cpp.o.d"
  "test_par_layout"
  "test_par_layout.pdb"
  "test_par_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
