file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_hamiltonian.dir/test_tddft_hamiltonian.cpp.o"
  "CMakeFiles/test_tddft_hamiltonian.dir/test_tddft_hamiltonian.cpp.o.d"
  "test_tddft_hamiltonian"
  "test_tddft_hamiltonian.pdb"
  "test_tddft_hamiltonian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_hamiltonian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
