# Empty compiler generated dependencies file for test_tddft_hamiltonian.
# This may be replaced when dependencies are built.
