file(REMOVE_RECURSE
  "CMakeFiles/test_isdf_sweep.dir/test_isdf_sweep.cpp.o"
  "CMakeFiles/test_isdf_sweep.dir/test_isdf_sweep.cpp.o.d"
  "test_isdf_sweep"
  "test_isdf_sweep.pdb"
  "test_isdf_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isdf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
