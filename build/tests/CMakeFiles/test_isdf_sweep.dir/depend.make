# Empty dependencies file for test_isdf_sweep.
# This may be replaced when dependencies are built.
