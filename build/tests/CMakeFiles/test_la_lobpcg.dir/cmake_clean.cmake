file(REMOVE_RECURSE
  "CMakeFiles/test_la_lobpcg.dir/test_la_lobpcg.cpp.o"
  "CMakeFiles/test_la_lobpcg.dir/test_la_lobpcg.cpp.o.d"
  "test_la_lobpcg"
  "test_la_lobpcg.pdb"
  "test_la_lobpcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_lobpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
