# Empty dependencies file for test_la_lobpcg.
# This may be replaced when dependencies are built.
