file(REMOVE_RECURSE
  "CMakeFiles/test_isdf.dir/test_isdf.cpp.o"
  "CMakeFiles/test_isdf.dir/test_isdf.cpp.o.d"
  "test_isdf"
  "test_isdf.pdb"
  "test_isdf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
