# Empty dependencies file for test_isdf.
# This may be replaced when dependencies are built.
