file(REMOVE_RECURSE
  "CMakeFiles/test_la_davidson.dir/test_la_davidson.cpp.o"
  "CMakeFiles/test_la_davidson.dir/test_la_davidson.cpp.o.d"
  "test_la_davidson"
  "test_la_davidson.pdb"
  "test_la_davidson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_davidson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
