# Empty dependencies file for test_la_davidson.
# This may be replaced when dependencies are built.
