# Empty compiler generated dependencies file for test_par_comm.
# This may be replaced when dependencies are built.
