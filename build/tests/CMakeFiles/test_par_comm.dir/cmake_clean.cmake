file(REMOVE_RECURSE
  "CMakeFiles/test_par_comm.dir/test_par_comm.cpp.o"
  "CMakeFiles/test_par_comm.dir/test_par_comm.cpp.o.d"
  "test_par_comm"
  "test_par_comm.pdb"
  "test_par_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
