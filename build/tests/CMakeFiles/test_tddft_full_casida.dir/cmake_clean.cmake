file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_full_casida.dir/test_tddft_full_casida.cpp.o"
  "CMakeFiles/test_tddft_full_casida.dir/test_tddft_full_casida.cpp.o.d"
  "test_tddft_full_casida"
  "test_tddft_full_casida.pdb"
  "test_tddft_full_casida[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_full_casida.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
