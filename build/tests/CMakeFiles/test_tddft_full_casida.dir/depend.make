# Empty dependencies file for test_tddft_full_casida.
# This may be replaced when dependencies are built.
