# Empty dependencies file for test_la_eig.
# This may be replaced when dependencies are built.
