file(REMOVE_RECURSE
  "CMakeFiles/test_la_solvers.dir/test_la_solvers.cpp.o"
  "CMakeFiles/test_la_solvers.dir/test_la_solvers.cpp.o.d"
  "test_la_solvers"
  "test_la_solvers.pdb"
  "test_la_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
