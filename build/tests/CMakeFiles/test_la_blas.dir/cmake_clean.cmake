file(REMOVE_RECURSE
  "CMakeFiles/test_la_blas.dir/test_la_blas.cpp.o"
  "CMakeFiles/test_la_blas.dir/test_la_blas.cpp.o.d"
  "test_la_blas"
  "test_la_blas.pdb"
  "test_la_blas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
