# Empty compiler generated dependencies file for test_la_blas.
# This may be replaced when dependencies are built.
