file(REMOVE_RECURSE
  "CMakeFiles/test_tddft_lobpcg.dir/test_tddft_lobpcg.cpp.o"
  "CMakeFiles/test_tddft_lobpcg.dir/test_tddft_lobpcg.cpp.o.d"
  "test_tddft_lobpcg"
  "test_tddft_lobpcg.pdb"
  "test_tddft_lobpcg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tddft_lobpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
