# Empty dependencies file for test_tddft_lobpcg.
# This may be replaced when dependencies are built.
