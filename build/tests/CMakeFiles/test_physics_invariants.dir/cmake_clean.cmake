file(REMOVE_RECURSE
  "CMakeFiles/test_physics_invariants.dir/test_physics_invariants.cpp.o"
  "CMakeFiles/test_physics_invariants.dir/test_physics_invariants.cpp.o.d"
  "test_physics_invariants"
  "test_physics_invariants.pdb"
  "test_physics_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physics_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
