# Empty dependencies file for test_dft_scf.
# This may be replaced when dependencies are built.
