file(REMOVE_RECURSE
  "CMakeFiles/test_dft_scf.dir/test_dft_scf.cpp.o"
  "CMakeFiles/test_dft_scf.dir/test_dft_scf.cpp.o.d"
  "test_dft_scf"
  "test_dft_scf.pdb"
  "test_dft_scf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dft_scf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
