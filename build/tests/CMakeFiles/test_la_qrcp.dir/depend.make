# Empty dependencies file for test_la_qrcp.
# This may be replaced when dependencies are built.
