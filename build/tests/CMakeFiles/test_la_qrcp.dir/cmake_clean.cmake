file(REMOVE_RECURSE
  "CMakeFiles/test_la_qrcp.dir/test_la_qrcp.cpp.o"
  "CMakeFiles/test_la_qrcp.dir/test_la_qrcp.cpp.o.d"
  "test_la_qrcp"
  "test_la_qrcp.pdb"
  "test_la_qrcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_qrcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
